"""Backend stage: issue, execute, complete, broadcast (paper Sec 4.1).

Instructions issue from a ready heap at dispatch+2, execute with dense
opcode-indexed latencies, and complete by broadcasting values to
consumers — reissuing any whose inputs changed (selective reissue),
including loads squashed by stores.  Branch completion is gated by the
configured completion model (Appendix A.2): in-order models consult the
event-maintained oldest-incomplete-branch cache, store-gated models the
LSQ's unresolved-store subset.

All instruction state lives in the columnar pool: the ready heap carries
pure int tuples ``(eligible, order, uid, handle)`` — the uid in the
tuple self-validates a popped entry against slot recycling — and the
completion wheel plus the pending-branch list carry packed refs that
self-invalidate the same way (``pool.ref[ref & REF_MASK] != ref``).
"""

from __future__ import annotations

import heapq

from ...isa import CONTROL_KERNELS, VALUE_KERNELS, effective_addr
from ..soa import (
    REF_MASK,
    ST_COMPLETED,
    ST_DEAD,
    ST_FETCHED_MP,
    ST_INFLIGHT,
    ST_IN_READY,
    ST_ISSUED_MP,
    ST_REISSUED_MP,
)


class BackendStage:
    """Issue/execute/complete methods mixed into the Processor facade."""

    def _operands_ready(self, h: int) -> bool:
        pool = self.pool
        t1, t2 = pool.src1_tag[h], pool.src2_tag[h]
        return (t1 is None or t1.ready) and (t2 is None or t2.ready)

    def _push_ready(self, h: int, eligible: int) -> None:
        pool = self.pool
        state = pool.state
        if state[h] & ST_IN_READY:
            return
        state[h] |= ST_IN_READY
        heapq.heappush(self._ready, (eligible, pool.order[h], pool.uid[h], h))

    def _wake(self, h: int, eligible: int) -> None:
        """A source tag broadcast a new value (or rename repair): reissue."""
        pool = self.pool
        if pool.state[h] & ST_DEAD:
            return
        if pool.issue_count[h] == 0 and not self._operands_ready(h):
            return
        self._push_ready(h, max(eligible, pool.dispatch_cycle[h] + 2))

    # ==================================================================
    # issue & execute

    def _issue_phase(self) -> None:
        budget = self.config.width
        issued = 0
        ready = self._ready
        pop = heapq.heappop
        pool = self.pool
        state = pool.state
        uids = pool.uid
        cycle = self.cycle
        while ready and budget > 0:
            eligible, _, uid, h = ready[0]
            if eligible > cycle:
                break
            pop(ready)
            if uids[h] != uid:
                # Slot recycled since push: the entry belongs to a dead
                # instruction; the current occupant's own in_ready flag
                # must not be touched.
                continue
            state[h] &= ~ST_IN_READY
            if state[h] & ST_DEAD:
                continue
            self._execute(h)
            budget -= 1
            issued += 1
        if issued:
            self.stats.stage_issue_cycles += 1

    def _execute(self, h: int) -> None:
        self.stats.issues_total += 1
        pool = self.pool
        token = pool.issue_count[h] + 1
        pool.issue_count[h] = token
        if pool.first_issue_cycle[h] < 0:
            pool.first_issue_cycle[h] = self.cycle
        state = pool.state
        s = state[h]
        if s & ST_FETCHED_MP and s & ST_ISSUED_MP:
            s |= ST_REISSUED_MP
        state[h] = s | ST_INFLIGHT
        instr = pool.instr[h]
        t1, t2 = pool.src1_tag[h], pool.src2_tag[h]
        if t1 is not None:
            a = t1.value
            pool.src1_version[h] = t1.version
        else:
            a = 0
        if t2 is not None:
            b = t2.value
            pool.src2_version[h] = t2.version
        else:
            b = 0
        # Dispatch straight to the shared raw kernels (single semantic
        # definition in repro.isa.instructions) — the ExecResult wrapper
        # evaluate() builds per call is pure allocation on this path.
        opcode = instr.opcode
        if instr.f_mem:
            addr = effective_addr(instr, a)
            if instr.f_load:
                pool.addr[h] = addr
                latency = 1 + self.cache.access(addr)
            else:
                pool.prev_addr[h] = pool.addr[h]
                pool.addr[h] = addr
                pool.store_value[h] = b
                latency = self._lat[opcode]
        elif instr.f_control:
            taken, next_pc, value = CONTROL_KERNELS[opcode](instr, pool.pc[h], a, b)
            pool.outcome_taken[h] = taken
            pool.outcome_next_pc[h] = next_pc
            pool.value[h] = value  # call link address
            latency = self._lat[opcode]
        else:
            pool.value[h] = VALUE_KERNELS[opcode](instr, a, b)
            latency = self._lat[opcode]
        # Inlined CompletionWheel.schedule: every latency comes from the
        # table the wheel was sized over at construction, so the horizon
        # guard cannot fire on this path.
        slot = (self.cycle + latency) & self._wheel_mask
        self._wheel_nodes[slot].append(pool.ref[h])
        self._wheel_tokens[slot].append(token)

    # ==================================================================
    # completion

    def _complete_phase(self) -> None:
        refs_due, tokens = self._completing.take(self.cycle)
        pool = self.pool
        refs = pool.ref
        state = pool.state
        issue_count = pool.issue_count
        if refs_due:
            complete = self._complete
            for ref, token in zip(refs_due, tokens):
                h = ref & REF_MASK
                if refs[h] != ref or state[h] & ST_DEAD or token != issue_count[h]:
                    continue
                state[h] &= ~ST_INFLIGHT
                complete(h)
            refs_due.clear()
            tokens.clear()
        if self._pending_branches:
            still_pending: list[tuple[int, int]] = []
            for ref, token in self._pending_branches:
                h = ref & REF_MASK
                if refs[h] != ref or state[h] & ST_DEAD or token != issue_count[h]:
                    continue
                if not self._try_complete_branch(h):
                    still_pending.append((ref, token))
            self._pending_branches = still_pending
        if self._any_completed:
            self.stats.stage_complete_cycles += 1
            self._any_completed = False
        if self._any_recovered:
            self.stats.stage_recover_cycles += 1
            self._any_recovered = False

    def _complete(self, h: int) -> None:
        pool = self.pool
        instr = pool.instr[h]
        if instr.f_branch or instr.f_indirect:
            if not self._try_complete_branch(h):
                self._pending_branches.append((pool.ref[h], pool.issue_count[h]))
            return
        pool.state[h] |= ST_COMPLETED
        self._any_completed = True
        if instr.f_load:
            source = self.lsq.forward_source(h)
            if source is not None:
                value = pool.store_value[source]
                pool.fwd_store[h] = pool.ref[source]
            else:
                value = self.committed_mem.get(pool.addr[h], 0)
                pool.fwd_store[h] = None
            pool.value[h] = value
            self._broadcast(h)
        elif instr.f_store:
            self.lsq.store_resolved(h)
            self._store_executed(h)
        else:
            self._broadcast(h)

    def _broadcast(self, h: int) -> None:
        pool = self.pool
        tag = pool.dest_tag[h]
        if tag is None:
            return
        if tag.broadcast(pool.value[h]):
            # The wake-up below only pushes onto the ready heap — it never
            # mutates the consumer list — so iterating the live list
            # directly is safe (the old defensive copy allocated per
            # broadcast).  The _wake body is inlined to spare one call and
            # a duplicate liveness check per consumer on this hot loop —
            # unless something patched _wake on the instance (the fault
            # injectors arm that way), in which case every wakeup must
            # route through the patched hook.
            cycle = self.cycle
            refs = pool.ref
            state = pool.state
            self_ref = refs[h]
            wake = self.__dict__.get("_wake")
            if wake is not None:
                dead = 0
                for ref in tag.consumers:
                    ch = ref & REF_MASK
                    if refs[ch] == ref and not state[ch] & ST_DEAD:
                        if ref != self_ref:
                            wake(ch, cycle)
                    else:
                        dead += 1
                if dead > 8 and dead * 2 > len(tag.consumers):
                    tag.consumers = [
                        r
                        for r in tag.consumers
                        if refs[r & REF_MASK] == r
                        and not state[r & REF_MASK] & ST_DEAD
                    ]
                return
            ready = self._ready
            issue_count = pool.issue_count
            src1_tag = pool.src1_tag
            src2_tag = pool.src2_tag
            dispatch_cycle = pool.dispatch_cycle
            orders = pool.order
            uids = pool.uid
            dead = 0
            for ref in tag.consumers:
                ch = ref & REF_MASK
                s = state[ch]
                if refs[ch] != ref or s & ST_DEAD:
                    dead += 1
                    continue
                if ref == self_ref or s & ST_IN_READY:
                    continue
                if issue_count[ch] == 0:
                    t1 = src1_tag[ch]
                    t2 = src2_tag[ch]
                    if (t1 is not None and not t1.ready) or (
                        t2 is not None and not t2.ready
                    ):
                        continue
                eligible = dispatch_cycle[ch] + 2
                if eligible < cycle:
                    eligible = cycle
                state[ch] = s | ST_IN_READY
                heapq.heappush(ready, (eligible, orders[ch], uids[ch], ch))
            if dead > 8 and dead * 2 > len(tag.consumers):
                tag.consumers = [
                    r
                    for r in tag.consumers
                    if refs[r & REF_MASK] == r and not state[r & REF_MASK] & ST_DEAD
                ]

    def _store_executed(self, h: int) -> None:
        pool = self.pool
        addrs = {pool.addr[h]}
        if pool.prev_addr[h] is not None:
            addrs.add(pool.prev_addr[h])  # loads bound to the stale address
        affected = self.lsq.loads_affected_by(h, addrs)
        if affected:
            node_ref = pool.ref[h]
            store_value = pool.store_value[h]
            fwd = pool.fwd_store
            value = pool.value
            for load in affected:
                if fwd[load] == node_ref and value[load] == store_value:
                    continue  # already forwarded the right value
                self.stats.reissues_memory += 1
                self._wake(load, self.cycle + 1)  # 1-cycle squash penalty

    # ------------------------------------------------------------------
    # branch completion (gating models of Appendix A.2)

    def _oldest_incomplete_branch(self) -> int | None:
        """Oldest alive incomplete branch, maintained event-style: the
        cache survives until its slot completes or is squashed (dispatch
        repairs it in place), so in-order gating is one order compare
        instead of a scan over every incomplete branch."""
        if not self._oldest_gate_valid:
            pool = self.pool
            state = pool.state
            orders = pool.order
            oldest = None
            for oh in self._incomplete_branches.values():
                if not state[oh] & (ST_COMPLETED | ST_DEAD) and (
                    oldest is None or orders[oh] < orders[oldest]
                ):
                    oldest = oh
            self._oldest_gate = oldest
            self._oldest_gate_valid = True
        return self._oldest_gate

    def _branch_gates_open(self, h: int) -> bool:
        if self._gate_in_order:
            oldest = self._oldest_incomplete_branch()
            if oldest is not None and self.pool.order[oldest] < self.pool.order[h]:
                return False
        if self._gate_stores:
            # Empty-subset guard: most cycles have no unresolved store in
            # flight, so skip the scan call outright.
            if self.lsq._unresolved_stores and self.lsq.unresolved_older_stores(h):
                return False
        return True

    def _would_be_false_misprediction(self, h: int) -> bool:
        entry = self._golden_entry_for(h)
        if entry is None:
            return False
        return entry.next_pc == self.pool.current_next_pc[h]

    def _try_complete_branch(self, h: int) -> bool:
        if not self._branch_gates_open(h):
            return False
        pool = self.pool
        mismatch = pool.outcome_next_pc[h] != pool.current_next_pc[h]
        if (
            mismatch
            and self.config.hide_false_mispredictions
            and self._would_be_false_misprediction(h)
        ):
            return False  # oracle delays completion until operands correct
        pool.state[h] |= ST_COMPLETED
        self._any_completed = True
        self._incomplete_branches.pop(pool.uid[h], None)
        if self._oldest_gate == h:
            self._oldest_gate_valid = False
        if pool.dest_tag[h] is not None:  # calls write the link register
            self._broadcast(h)
        if mismatch:
            self._recover(h)
        return True


__all__ = ["BackendStage"]
