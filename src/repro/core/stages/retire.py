"""Retire stage: in-order commit, co-simulation, sequence repair.

Retirement co-simulates against the golden architectural trace — any
divergence is a simulator bug (:class:`~repro.errors.CosimulationError`
with a machine snapshot), not a statistic.  The predictor trains at
retirement (delayed update, Sec 4.1), Table 3's work-saved classes are
counted here, and a commit-time next-PC check repairs mis-spliced
heuristic reconvergences by flushing younger state.
"""

from __future__ import annotations

from ...errors import CosimulationError
from ...isa import Op
from ..rob import DynInstr


class RetireStage:
    """Commit-side methods mixed into the Processor facade."""

    def _retire_phase(self) -> None:
        budget = self.config.width
        retired_any = False
        golden = self.golden.entries
        n_golden = len(golden)
        rob = self.rob
        stats = self.stats
        lsq = self.lsq
        head_sentinel = rob.head_sentinel
        tail = rob.tail_sentinel
        while budget > 0:
            node = head_sentinel.next
            if node is tail:
                break
            if not node.completed or node.in_ready or node.inflight or node.recovering:
                break
            # Commit-time sequence check (real pipelines verify next-PC at
            # retirement): if the window successor does not continue this
            # instruction's committed path — possible after a mis-spliced
            # heuristic reconvergence — flush younger state and refetch.
            expected_next = (
                node.current_next_pc if node.instr.f_control else node.pc + 1
            )
            succ = node.next
            if succ is not tail and succ.pc != expected_next:
                self._sequence_repair(node, expected_next)
            entry = golden[self.retired_count] if self.retired_count < n_golden else None
            if entry is None or entry.pc != node.pc:
                raise CosimulationError(
                    f"retired pc {node.pc} but golden expects "
                    f"{entry.pc if entry else 'END'} at index {self.retired_count}",
                    snapshot=self.snapshot(),
                )
            self._check_and_commit(node, entry)
            if node.dest_arch is not None:
                self.retired_map[node.dest_arch] = node.dest_tag
            stats.issues_of_retired += node.issue_count
            node.retired = True
            retired_any = True
            self._map_epoch += 1
            if node.instr.f_mem:
                lsq.drop(node)
            rob.retire(node)
            self.retired_count += 1
            stats.retired += 1
            budget -= 1
            if node.instr.op is Op.HALT:
                self.halted = True
                break
        if retired_any:
            stats.stage_retire_cycles += 1

    def _check_and_commit(self, node: DynInstr, entry) -> None:
        instr = node.instr
        if instr.f_store:
            if node.addr != entry.addr or node.store_value != entry.store_value:
                raise CosimulationError(
                    f"store at pc {node.pc}: simulated {node.addr}={node.store_value}, "
                    f"golden {entry.addr}={entry.store_value}",
                    snapshot=self.snapshot(),
                )
            self.committed_mem[node.addr] = node.store_value
        elif node.dest_tag is not None:
            if node.value != entry.value:
                raise CosimulationError(
                    f"pc {node.pc} ({instr.op.name}): simulated value {node.value}, "
                    f"golden {entry.value}",
                    snapshot=self.snapshot(),
                )
        if instr.f_control:
            if node.current_next_pc != entry.next_pc:
                raise CosimulationError(
                    f"control at pc {node.pc}: retiring down {node.current_next_pc}, "
                    f"golden goes to {entry.next_pc}",
                    snapshot=self.snapshot(),
                )
            # Train the predictor at retirement (delayed update, Sec 4.1).
            self.frontend.update(
                instr, node.pc, self.retire_ghr, entry.taken, entry.next_pc
            )
            if instr.f_branch or (instr.f_indirect and not instr.f_return):
                self.stats.branch_events += 1
                if node.predicted_next_pc != entry.next_pc:
                    self.stats.branch_mispredictions_retired += 1
            if instr.f_branch:
                self.retire_ghr = self.frontend.push_history(
                    self.retire_ghr, entry.taken
                )
        # Table 3 classification.
        if node.fetched_under_mp:
            self.stats.retired_fetch_saved += 1
            if node.issued_under_mp and not node.reissued_after_mp:
                self.stats.retired_work_saved += 1
            elif node.issued_under_mp:
                self.stats.retired_work_discarded += 1
            else:
                self.stats.retired_only_fetched += 1

    def _sequence_repair(self, node: DynInstr, expected_next: int) -> None:
        """Flush everything younger than the retiring instruction and
        refetch from its committed successor."""
        if self.config.strict_commit:
            succ = node.next
            raise CosimulationError(
                f"commit-time next-PC check failed at pc {node.pc}: committed "
                f"path continues at {expected_next} but the window holds pc "
                f"{succ.pc if succ is not self.rob.tail_sentinel else 'END'} — "
                "mis-spliced reconvergence under exact post-dominator info",
                snapshot=self.snapshot(),
            )
        self.stats.sequence_repairs += 1
        self._squash_after(node)
        for ctx in self.contexts:
            if ctx.branch is not None and ctx.branch.alive:
                ctx.branch.recovering = False
        self.contexts.clear()
        node.recovering = False
        self.frontier.fetch_pc = expected_next
        ghr = self.retire_ghr
        if node.instr.f_branch:
            ghr = self.frontend.push_history(ghr, node.outcome_taken)
        self.frontier.ghr = ghr
        self.frontier.rmap = self._map_after(node)
        self.frontier.segment = None
        self.frontier.stalled = False
        if node.ras_snapshot is not None:
            self.frontend.ras.restore(node.ras_snapshot)
            if node.instr.f_call:
                self.frontend.ras.push(node.pc + 1)
            elif node.instr.f_return:
                self.frontend.ras.pop()


__all__ = ["RetireStage"]
