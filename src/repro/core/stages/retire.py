"""Retire stage: in-order commit, co-simulation, sequence repair.

Retirement co-simulates against the golden architectural trace — any
divergence is a simulator bug (:class:`~repro.errors.CosimulationError`
with a machine snapshot), not a statistic.  The predictor trains at
retirement (delayed update, Sec 4.1), Table 3's work-saved classes are
counted here, and a commit-time next-PC check repairs mis-spliced
heuristic reconvergences by flushing younger state.

The retire gate is one masked compare on the pool's state column:
``state & ST_RETIRE_GATE == ST_COMPLETED`` holds exactly when the head
is completed and neither in the ready heap, in flight, nor anchoring an
active recovery.
"""

from __future__ import annotations

from ...errors import CosimulationError
from ...isa import Op
from ..soa import (
    HEAD,
    TAIL,
    ST_COMPLETED,
    ST_DEAD,
    ST_FETCHED_MP,
    ST_ISSUED_MP,
    ST_RECOVERING,
    ST_REISSUED_MP,
    ST_RETIRED,
    ST_RETIRE_GATE,
)


class RetireStage:
    """Commit-side methods mixed into the Processor facade."""

    def _retire_phase(self) -> None:
        budget = self.config.width
        retired_any = False
        golden = self.golden.entries
        n_golden = len(golden)
        rob = self.rob
        stats = self.stats
        lsq = self.lsq
        pool = self.pool
        state = pool.state
        next_col = pool.next
        pc_col = pool.pc
        while budget > 0:
            h = next_col[HEAD]
            if h == TAIL:
                break
            if state[h] & ST_RETIRE_GATE != ST_COMPLETED:
                break
            instr = pool.instr[h]
            pc = pc_col[h]
            # Commit-time sequence check (real pipelines verify next-PC at
            # retirement): if the window successor does not continue this
            # instruction's committed path — possible after a mis-spliced
            # heuristic reconvergence — flush younger state and refetch.
            expected_next = (
                pool.current_next_pc[h] if instr.f_control else pc + 1
            )
            succ = next_col[h]
            if succ != TAIL and pc_col[succ] != expected_next:
                self._sequence_repair(h, expected_next)
            entry = golden[self.retired_count] if self.retired_count < n_golden else None
            if entry is None or entry.pc != pc:
                raise CosimulationError(
                    f"retired pc {pc} but golden expects "
                    f"{entry.pc if entry else 'END'} at index {self.retired_count}",
                    snapshot=self.snapshot(),
                )
            self._check_and_commit(h, entry)
            if pool.dest_arch[h] is not None:
                self.retired_map[pool.dest_arch[h]] = pool.dest_tag[h]
            stats.issues_of_retired += pool.issue_count[h]
            state[h] |= ST_RETIRED
            retired_any = True
            self._map_epoch += 1
            if instr.f_mem:
                lsq.drop(h)
            rob.remove(h)
            self.retired_count += 1
            stats.retired += 1
            budget -= 1
            if instr.op is Op.HALT:
                self.halted = True
                break
        if retired_any:
            stats.stage_retire_cycles += 1

    def _check_and_commit(self, h: int, entry) -> None:
        pool = self.pool
        instr = pool.instr[h]
        pc = pool.pc[h]
        if instr.f_store:
            if pool.addr[h] != entry.addr or pool.store_value[h] != entry.store_value:
                raise CosimulationError(
                    f"store at pc {pc}: simulated "
                    f"{pool.addr[h]}={pool.store_value[h]}, "
                    f"golden {entry.addr}={entry.store_value}",
                    snapshot=self.snapshot(),
                )
            self.committed_mem[pool.addr[h]] = pool.store_value[h]
        elif pool.dest_tag[h] is not None:
            if pool.value[h] != entry.value:
                raise CosimulationError(
                    f"pc {pc} ({instr.op.name}): simulated value "
                    f"{pool.value[h]}, golden {entry.value}",
                    snapshot=self.snapshot(),
                )
        if instr.f_control:
            if pool.current_next_pc[h] != entry.next_pc:
                raise CosimulationError(
                    f"control at pc {pc}: retiring down "
                    f"{pool.current_next_pc[h]}, golden goes to {entry.next_pc}",
                    snapshot=self.snapshot(),
                )
            # Train the predictor at retirement (delayed update, Sec 4.1).
            self.frontend.update(
                instr, pc, self.retire_ghr, entry.taken, entry.next_pc
            )
            if instr.f_branch or (instr.f_indirect and not instr.f_return):
                self.stats.branch_events += 1
                if pool.predicted_next_pc[h] != entry.next_pc:
                    self.stats.branch_mispredictions_retired += 1
            if instr.f_branch:
                self.retire_ghr = self.frontend.push_history(
                    self.retire_ghr, entry.taken
                )
        # Table 3 classification.
        s = pool.state[h]
        if s & ST_FETCHED_MP:
            self.stats.retired_fetch_saved += 1
            if s & ST_ISSUED_MP and not s & ST_REISSUED_MP:
                self.stats.retired_work_saved += 1
            elif s & ST_ISSUED_MP:
                self.stats.retired_work_discarded += 1
            else:
                self.stats.retired_only_fetched += 1

    def _sequence_repair(self, h: int, expected_next: int) -> None:
        """Flush everything younger than the retiring instruction and
        refetch from its committed successor."""
        pool = self.pool
        if self.config.strict_commit:
            succ = pool.next[h]
            raise CosimulationError(
                f"commit-time next-PC check failed at pc {pool.pc[h]}: committed "
                f"path continues at {expected_next} but the window holds pc "
                f"{pool.pc[succ] if succ != TAIL else 'END'} — "
                "mis-spliced reconvergence under exact post-dominator info",
                snapshot=self.snapshot(),
            )
        self.stats.sequence_repairs += 1
        self._squash_after(h)
        state = pool.state
        for ctx in self.contexts:
            if ctx.branch is not None and not state[ctx.branch] & ST_DEAD:
                state[ctx.branch] &= ~ST_RECOVERING
        self.contexts.clear()
        state[h] &= ~ST_RECOVERING
        self.frontier.fetch_pc = expected_next
        ghr = self.retire_ghr
        instr = pool.instr[h]
        if instr.f_branch:
            ghr = self.frontend.push_history(ghr, pool.outcome_taken[h])
        self.frontier.ghr = ghr
        self.frontier.rmap = self._map_after(h)
        self.frontier.segment = None
        self.frontier.stalled = False
        if pool.ras_snapshot[h] is not None:
            self.frontend.ras.restore(pool.ras_snapshot[h])
            if instr.f_call:
                self.frontend.ras.push(pool.pc[h] + 1)
            elif instr.f_return:
                self.frontend.ras.pop()


__all__ = ["RetireStage"]
