"""Detailed execution-driven simulator of a control-independence
superscalar processor (paper Sections 3-4 and Appendix).

The machine is a 16-wide, 5-stage out-of-order processor with a
linked-window (optionally segmented) reorder buffer over a columnar
instruction pool (:class:`repro.core.soa.InstrPool`), unlimited physical
registers, an aggressive load/store queue, and a gshare/CTB/RAS front
end.  Control independence is exploited exactly as the paper describes:

* a misprediction looks up the reconvergent point (software
  post-dominators or the hardware heuristics of Appendix A.5) and, if it
  is in the window, selectively squashes the incorrect control-dependent
  instructions (*restart sequence*), fetching the correct path into the
  gap;
* a *redispatch sequence* then walks the control-independent region at
  dispatch bandwidth, remapping source registers (destinations keep
  their tags), re-predicting branches against the repaired global
  history, and reissuing instructions whose inputs changed;
* instructions stay in their issue slots until retirement and reissue
  autonomously whenever a source tag broadcasts a changed value
  (selective reissue), including loads squashed by stores.

Execution is value-based: wrong paths compute real (wrong) values, so
false mispredictions (Appendix A.2) arise naturally.  Retirement
co-simulates against the golden architectural trace — any divergence is
a simulator bug, not a statistic.

This module is the *facade*: it owns the machine state, the cycle loop
and the diagnostics surface, while the pipeline itself lives in the
stage mixins of :mod:`repro.core.stages` (sequencer, backend, recovery,
retire).  ``Processor``'s public API — construction, ``run``,
``add_cycle_hook``, ``snapshot`` — is unchanged by the split, and so is
every statistic.
"""

from __future__ import annotations

from ..bpred import FrontEnd
from ..cfg import ReconvergenceTable
from ..errors import MachineSnapshot, SimulationHang
from ..isa import NUM_REGS, Program
from ..memsys import PerfectCache, SetAssociativeCache
from ..ideal.models import latency_table
from .config import CoreConfig, ReconvPolicy
from .golden import GoldenTrace
from .lsq import LoadStoreQueue
from .regfile import PhysReg
from .rob import ReorderBuffer
from .soa import (
    CompletionWheel,
    ST_COMPLETED,
    ST_INFLIGHT,
    ST_IN_READY,
    ST_RECOVERING,
)
from .stats import CoreStats
from .stages import (
    BackendStage,
    RecoveryStage,
    RetireStage,
    SequencerStage,
    _Context,
)


class Processor(SequencerStage, BackendStage, RecoveryStage, RetireStage):
    """One configured machine, runnable over one program.

    The pipeline stages are mixins over this facade's shared state; see
    :mod:`repro.core.stages` for the per-stage module map.
    """

    def __init__(
        self,
        program: Program,
        config: CoreConfig | None = None,
        golden: GoldenTrace | None = None,
        reconv_table: ReconvergenceTable | None = None,
        tfr_collectors: tuple = (),
    ):
        self.program = program
        self._code = program.instructions
        self._code_len = len(program.instructions)
        self.config = config if config is not None else CoreConfig()
        cfg = self.config.validate()
        self.golden = golden if golden is not None else GoldenTrace(
            program, history_bits=cfg.predictor_index_bits
        )
        self.reconv_table = None
        if cfg.reconv_policy is ReconvPolicy.POSTDOM:
            self.reconv_table = (
                reconv_table if reconv_table is not None else ReconvergenceTable(program)
            )
        self.tfr_collectors = tfr_collectors

        self.frontend = FrontEnd(index_bits=cfg.predictor_index_bits)
        self.rob = ReorderBuffer(
            cfg.window_size, cfg.segment_size, order_scheme=cfg.order_scheme
        )
        #: the columnar instruction store backing every in-window
        #: instruction; stage mixins address instructions as pool handles
        self.pool = self.rob.pool
        self.lsq = LoadStoreQueue(self.pool)
        self.cache = (
            PerfectCache(latency=1)
            if cfg.perfect_cache
            else SetAssociativeCache(
                size_bytes=cfg.cache_size_bytes,
                assoc=cfg.cache_assoc,
                hit_latency=cfg.cache_hit_latency,
                miss_latency=cfg.cache_miss_latency,
            )
        )
        self.committed_mem: dict[int, int] = dict(program.data)
        self.stats = CoreStats()

        # Architectural registers start ready with value zero.
        arch_map: list[PhysReg] = []
        for _ in range(NUM_REGS):
            reg = PhysReg()
            reg.ready = True
            arch_map.append(reg)
        #: mapping as of the last retired instruction (commit-side map)
        self.retired_map: list[PhysReg] = list(arch_map)
        self.frontier = _Context(program.entry, 0, list(arch_map))
        self.contexts: list[_Context] = []  # restart stack; top is last

        self.cycle = 0
        self.uid_counter = 0
        self.retired_count = 0
        self.retire_ghr = 0
        self.halted = False

        self._last_active: _Context | None = None
        self._needs_remap = False
        #: ready heap of pure int tuples (eligible, order, uid, handle);
        #: the uid self-validates popped entries against slot recycling
        self._ready: list[tuple[int, int, int, int]] = []
        #: gated branches as (packed ref, issue token) pairs
        self._pending_branches: list[tuple[int, int]] = []
        #: uid -> pool handle of every in-window incomplete branch
        self._incomplete_branches: dict[int, int] = {}

        # Hot-path precomputation: execution latency by dense opcode, and
        # the completion-model gates resolved to plain booleans.
        self._lat = latency_table(cfg.latencies)
        # Completion events live in a preallocated ring sized past the
        # largest possible completion latency (op latency, or load
        # hit/miss plus the 1-cycle address cycle).
        self._completing = CompletionWheel(
            max(
                max(self._lat),
                1 + (1 if cfg.perfect_cache else cfg.cache_miss_latency),
            )
        )
        # Aliases for the execute path's inlined schedule (the wheel's
        # horizon covers every latency above by construction).
        self._wheel_mask = self._completing._mask
        self._wheel_nodes = self._completing._nodes
        self._wheel_tokens = self._completing._tokens
        self._gate_in_order = cfg.completion_model.branches_in_order
        self._gate_stores = cfg.completion_model.requires_resolved_stores

        # Event-maintained gating state: the oldest alive incomplete
        # branch (in-order completion models consult it per completing
        # branch instead of rescanning every incomplete branch).  The
        # cache is repaired on dispatch and invalidated when its slot
        # completes or is squashed; ``None`` while valid means "no
        # incomplete branch in the window".
        self._oldest_gate: int | None = None
        self._oldest_gate_valid = True

        # Rename-map memoization: _map_after results are valid until the
        # window contents (or the commit-side map) change; the epoch
        # stamps both.  Nested recoveries and the sequencer reactivation
        # repeatedly rebuild the same anchor's map within one cycle.
        self._map_epoch = 0
        self._map_cache: dict[int, list] = {}
        self._map_cache_epoch = -1

        # Per-cycle stage-activity flags for the cycle-accounting layer.
        self._any_completed = False
        self._any_recovered = False

        # Resumable-loop state latched by start(); declared here so the
        # facade's attribute surface is complete after construction (the
        # staticcheck undeclared-attribute rule audits exactly this).
        self._max_cycles = self.config.max_cycles
        self._watchdog = self.config.watchdog_cycles
        self._last_retired = 0
        self._last_progress_cycle = 0

        # Hardware reconvergence heuristics (Appendix A.5).
        self._return_targets: set[int] = set()
        self._loop_targets: set[int] = set()

        #: robustness hooks invoked once per cycle with the processor;
        #: used by the fault-injection layer to corrupt state mid-run
        self._cycle_hooks: list = []
        if cfg.sanitize_enabled():
            # Local import: repro.analysis is a consumer of repro.core
            # everywhere else; only the opt-in sanitizer flows back in.
            from ..analysis import MachineSanitizer

            # First hook on purpose: fault injectors register afterwards,
            # so a corruption landing at the end of cycle N is reported
            # at the end of cycle N+1 (with sanitize_stride=1).
            self.add_cycle_hook(MachineSanitizer(stride=cfg.sanitize_stride))

    # ==================================================================
    # helpers

    def add_cycle_hook(self, hook) -> None:
        """Register ``hook(processor)`` to run at the end of every cycle."""
        self._cycle_hooks.append(hook)

    def snapshot(self) -> MachineSnapshot:
        """Capture machine state for failure diagnostics."""
        head = self.rob.head
        if head is None:
            head_pc, head_status, head_age = None, "empty", None
        else:
            pool = self.pool
            head_age = self.cycle - pool.dispatch_cycle[head]
            s = int(pool.state[head])
            flags = []
            flags.append("completed" if s & ST_COMPLETED else "incomplete")
            if s & ST_IN_READY:
                flags.append("in-ready")
            if s & ST_INFLIGHT:
                flags.append("inflight")
            if s & ST_RECOVERING:
                flags.append("recovering")
            head_pc, head_status = pool.pc[head], " ".join(flags)
        last_retired_pc = (
            self.golden.entries[self.retired_count - 1].pc
            if 0 < self.retired_count <= len(self.golden.entries)
            else None
        )
        return MachineSnapshot(
            cycle=self.cycle,
            fetch_pc=self.frontier.fetch_pc,
            rob_occupancy=self.rob.slots_used,
            window_size=self.rob.window_size,
            active_contexts=len(self.contexts),
            context_phases=tuple(c.phase for c in self.contexts),
            retired=self.retired_count,
            golden_length=len(self.golden),
            head_pc=head_pc,
            head_status=head_status,
            incomplete_branches=len(self._incomplete_branches),
            last_retired_pc=last_retired_pc,
            oldest_rob_age=head_age,
        )

    def _active_context(self) -> _Context:
        if not self.contexts:
            return self.frontier
        # The oldest outstanding recovery blocks retirement: service it
        # first (optimal preemption resumes suspended sequences in order).
        orders = self.pool.order
        return min(self.contexts, key=lambda c: orders[c.branch])

    def _golden_index(self, h: int) -> int:
        """Approximate golden-trace index of an in-window instruction.

        Counts alive instructions from the window head (the paper's own
        instance-matching approach, with the same instance-mismatch
        caveats it describes in Appendix A.3.1).  Served by the ROB's
        incrementally maintained position index rather than a per-call
        head-to-slot scan."""
        return self.retired_count + self.rob.index_of(h)

    def _golden_entry_for(self, h: int):
        entry = self.golden.entry(self._golden_index(h))
        if entry is not None and entry.pc == self.pool.pc[h]:
            return entry
        return None

    # ==================================================================
    # the cycle loop: explicit stage wiring
    #
    # The loop is resumable — ``start()`` latches the budget/watchdog
    # state, ``step()`` advances exactly one cycle, ``finish()`` seals
    # the statistics — so a batch driver (:mod:`repro.harness.batch`)
    # can interleave cycles of independent machines.  ``run()`` is the
    # serial driver over the same three calls; cycle ordering within a
    # step is byte-identical to the historical monolithic loop.

    def start(self) -> None:
        """Latch the cycle budget and forward-progress watchdog state."""
        self._max_cycles = self.config.max_cycles
        self._watchdog = self.config.watchdog_cycles
        self._last_retired = self.retired_count
        self._last_progress_cycle = self.cycle

    def step(self) -> bool:
        """Advance one cycle; False once the machine has halted."""
        if self.halted:
            return False
        if self.cycle > self._max_cycles:
            raise SimulationHang(
                f"exceeded the {self._max_cycles}-cycle budget",
                snapshot=self.snapshot(),
                kind="cycle-limit",
            )
        self._complete_phase()
        self._retire_phase()
        # Forward-progress watchdog: a window that stops retiring long
        # before max_cycles is a livelock (lost wakeup, stuck recovery),
        # not a slow program — fail fast with the machine state.
        if self.retired_count != self._last_retired:
            self._last_retired = self.retired_count
            self._last_progress_cycle = self.cycle
        elif self.cycle - self._last_progress_cycle >= self._watchdog:
            raise SimulationHang(
                f"no instruction retired in {self._watchdog} cycles "
                "(forward-progress watchdog)",
                snapshot=self.snapshot(),
                kind="livelock",
            )
        if self.halted:
            return False
        self._issue_phase()
        fetched_before = self.stats.fetched
        self._sequencer_phase()
        if self.stats.fetched != fetched_before:
            self.stats.stage_dispatch_cycles += 1
        for hook in self._cycle_hooks:
            hook(self)
        self.cycle += 1
        return True

    def finish(self) -> CoreStats:
        """Seal and return the statistics after the machine halts."""
        self.stats.cycles = self.cycle + 1
        return self.stats

    def run(self) -> CoreStats:
        self.start()
        while self.step():
            pass
        return self.finish()


def simulate_core(
    program: Program,
    config: CoreConfig | None = None,
    golden: GoldenTrace | None = None,
    reconv_table: ReconvergenceTable | None = None,
) -> CoreStats:
    """Run one program through one detailed-machine configuration."""
    return Processor(program, config, golden, reconv_table).run()
