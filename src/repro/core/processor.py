"""Detailed execution-driven simulator of a control-independence
superscalar processor (paper Sections 3-4 and Appendix).

The machine is a 16-wide, 5-stage out-of-order processor with a
linked-list (optionally segmented) reorder buffer, unlimited physical
registers, an aggressive load/store queue, and a gshare/CTB/RAS front
end.  Control independence is exploited exactly as the paper describes:

* a misprediction looks up the reconvergent point (software
  post-dominators or the hardware heuristics of Appendix A.5) and, if it
  is in the window, selectively squashes the incorrect control-dependent
  instructions (*restart sequence*), fetching the correct path into the
  gap;
* a *redispatch sequence* then walks the control-independent region at
  dispatch bandwidth, remapping source registers (destinations keep
  their tags), re-predicting branches against the repaired global
  history, and reissuing instructions whose inputs changed;
* instructions stay in their issue slots until retirement and reissue
  autonomously whenever a source tag broadcasts a changed value
  (selective reissue), including loads squashed by stores.

Execution is value-based: wrong paths compute real (wrong) values, so
false mispredictions (Appendix A.2) arise naturally.  Retirement
co-simulates against the golden architectural trace — any divergence is
a simulator bug, not a statistic.
"""

from __future__ import annotations

import heapq

from ..bpred import FrontEnd
from ..cfg import ReconvergenceTable
from ..errors import CosimulationError, MachineSnapshot, SimulationHang
from ..isa import NUM_REGS, Op, Program, evaluate
from ..memsys import PerfectCache, SetAssociativeCache
from ..ideal.models import latency_table
from .config import CoreConfig, Preemption, ReconvPolicy, RepredictMode
from .golden import GoldenTrace
from .lsq import LoadStoreQueue
from .regfile import PhysReg
from .rob import DynInstr, ReorderBuffer, Segment
from .stats import CoreStats


class _Context:
    """A fetch context: the frontier, or one restart/redispatch sequence."""

    __slots__ = (
        "branch",
        "reconv",
        "insert_point",
        "fetch_pc",
        "ghr",
        "rmap",
        "segment",
        "stalled",
        "phase",  # "frontier" | "restart" | "redispatch"
        "walk_cursor",
        "walk_ras",
        "start_cycle",
        "inserted",
    )

    def __init__(self, fetch_pc: int, ghr: int, rmap: list):
        self.branch: DynInstr | None = None
        self.reconv: DynInstr | None = None
        self.insert_point: DynInstr | None = None
        self.fetch_pc = fetch_pc
        self.ghr = ghr
        self.rmap = rmap
        self.segment: Segment | None = None
        self.stalled = False
        self.phase = "frontier"
        self.walk_cursor: DynInstr | None = None
        self.walk_ras: list[int] | None = None
        self.start_cycle = 0
        self.inserted = 0


class Processor:
    """One configured machine, runnable over one program."""

    def __init__(
        self,
        program: Program,
        config: CoreConfig | None = None,
        golden: GoldenTrace | None = None,
        reconv_table: ReconvergenceTable | None = None,
        tfr_collectors: tuple = (),
    ):
        self.program = program
        self.config = config if config is not None else CoreConfig()
        cfg = self.config.validate()
        self.golden = golden if golden is not None else GoldenTrace(
            program, history_bits=cfg.predictor_index_bits
        )
        self.reconv_table = None
        if cfg.reconv_policy is ReconvPolicy.POSTDOM:
            self.reconv_table = (
                reconv_table if reconv_table is not None else ReconvergenceTable(program)
            )
        self.tfr_collectors = tfr_collectors

        self.frontend = FrontEnd(index_bits=cfg.predictor_index_bits)
        self.rob = ReorderBuffer(cfg.window_size, cfg.segment_size)
        self.lsq = LoadStoreQueue()
        self.cache = (
            PerfectCache(latency=1)
            if cfg.perfect_cache
            else SetAssociativeCache(
                size_bytes=cfg.cache_size_bytes,
                assoc=cfg.cache_assoc,
                hit_latency=cfg.cache_hit_latency,
                miss_latency=cfg.cache_miss_latency,
            )
        )
        self.committed_mem: dict[int, int] = dict(program.data)
        self.stats = CoreStats()

        # Architectural registers start ready with value zero.
        arch_map: list[PhysReg] = []
        for _ in range(NUM_REGS):
            reg = PhysReg()
            reg.ready = True
            arch_map.append(reg)
        #: mapping as of the last retired instruction (commit-side map)
        self.retired_map: list[PhysReg] = list(arch_map)
        self.frontier = _Context(program.entry, 0, list(arch_map))
        self.contexts: list[_Context] = []  # restart stack; top is last

        self.cycle = 0
        self.uid_counter = 0
        self.retired_count = 0
        self.retire_ghr = 0
        self.halted = False

        self._last_active: _Context | None = None
        self._needs_remap = False
        self._ready: list[tuple[int, int, int, DynInstr]] = []
        self._completing: dict[int, list[tuple[DynInstr, int]]] = {}
        self._pending_branches: list[tuple[DynInstr, int]] = []
        self._incomplete_branches: dict[int, DynInstr] = {}

        # Hot-path precomputation: execution latency by dense opcode, and
        # the completion-model gates resolved to plain booleans.
        self._lat = latency_table(cfg.latencies)
        self._gate_in_order = cfg.completion_model.branches_in_order
        self._gate_stores = cfg.completion_model.requires_resolved_stores

        # Event-maintained gating state: the oldest alive incomplete
        # branch (in-order completion models consult it per completing
        # branch instead of rescanning every incomplete branch).  The
        # cache is repaired on dispatch and invalidated when its node
        # completes or is squashed; ``None`` while valid means "no
        # incomplete branch in the window".
        self._oldest_gate: DynInstr | None = None
        self._oldest_gate_valid = True

        # Rename-map memoization: _map_after results are valid until the
        # window contents (or the commit-side map) change; the epoch
        # stamps both.  Nested recoveries and the sequencer reactivation
        # repeatedly rebuild the same anchor's map within one cycle.
        self._map_epoch = 0
        self._map_cache: dict[int, list] = {}
        self._map_cache_epoch = -1

        # Per-cycle stage-activity flags for the cycle-accounting layer.
        self._any_completed = False
        self._any_recovered = False

        # Hardware reconvergence heuristics (Appendix A.5).
        self._return_targets: set[int] = set()
        self._loop_targets: set[int] = set()

        #: robustness hooks invoked once per cycle with the processor;
        #: used by the fault-injection layer to corrupt state mid-run
        self._cycle_hooks: list = []
        if cfg.sanitize_enabled():
            # Local import: repro.analysis is a consumer of repro.core
            # everywhere else; only the opt-in sanitizer flows back in.
            from ..analysis import MachineSanitizer

            # First hook on purpose: fault injectors register afterwards,
            # so a corruption landing at the end of cycle N is reported
            # at the end of cycle N+1 (with sanitize_stride=1).
            self.add_cycle_hook(MachineSanitizer(stride=cfg.sanitize_stride))

    # ==================================================================
    # helpers

    def add_cycle_hook(self, hook) -> None:
        """Register ``hook(processor)`` to run at the end of every cycle."""
        self._cycle_hooks.append(hook)

    def snapshot(self) -> MachineSnapshot:
        """Capture machine state for failure diagnostics."""
        head = self.rob.head
        if head is None:
            head_pc, head_status = None, "empty"
        else:
            flags = []
            flags.append("completed" if head.completed else "incomplete")
            if head.in_ready:
                flags.append("in-ready")
            if head.inflight:
                flags.append("inflight")
            if head.recovering:
                flags.append("recovering")
            head_pc, head_status = head.pc, " ".join(flags)
        return MachineSnapshot(
            cycle=self.cycle,
            fetch_pc=self.frontier.fetch_pc,
            rob_occupancy=self.rob.slots_used,
            window_size=self.rob.window_size,
            active_contexts=len(self.contexts),
            context_phases=tuple(c.phase for c in self.contexts),
            retired=self.retired_count,
            golden_length=len(self.golden),
            head_pc=head_pc,
            head_status=head_status,
            incomplete_branches=len(self._incomplete_branches),
        )

    def _active_context(self) -> _Context:
        if not self.contexts:
            return self.frontier
        # The oldest outstanding recovery blocks retirement: service it
        # first (optimal preemption resumes suspended sequences in order).
        return min(self.contexts, key=lambda c: c.branch.order)

    def _golden_index(self, node: DynInstr) -> int:
        """Approximate golden-trace index of an in-window instruction.

        Counts alive instructions from the window head (the paper's own
        instance-matching approach, with the same instance-mismatch
        caveats it describes in Appendix A.3.1).  Served by the ROB's
        incrementally maintained position index rather than a per-call
        head-to-node scan."""
        return self.retired_count + self.rob.index_of(node)

    def _golden_entry_for(self, node: DynInstr):
        entry = self.golden.entry(self._golden_index(node))
        if entry is not None and entry.pc == node.pc:
            return entry
        return None

    # ==================================================================
    # dispatch

    def _dispatch(self, ctx: _Context, pc: int) -> DynInstr | None:
        """Fetch + rename one instruction into ``ctx``; returns the node,
        or None when fetch must stall (HALT reached / out of range)."""
        instr = self.program.fetch(pc)
        if instr is None:
            ctx.stalled = True
            return None
        node = DynInstr(self.uid_counter, pc, instr)
        self.uid_counter += 1
        node.dispatch_cycle = self.cycle

        if ctx.phase == "frontier":
            ctx.segment = self.rob.append(node, ctx.segment)
        else:
            ctx.segment = self.rob.insert_after(ctx.insert_point, node, ctx.segment)
            ctx.insert_point = node
            ctx.inserted += 1
        self.stats.fetched += 1
        self._map_epoch += 1

        rmap = ctx.rmap
        if instr.reads_rs1:
            node.src1_tag = rmap[instr.rs1]
            node.src1_tag.consumers.append(node)
        if instr.reads_rs2:
            node.src2_tag = rmap[instr.rs2]
            node.src2_tag.consumers.append(node)
        dest = instr.dest_reg
        if dest is not None:
            node.dest_arch = dest
            node.prev_tag = rmap[dest]
            tag = PhysReg(node)
            rmap[dest] = tag
            node.dest_tag = tag

        self.lsq.add(node)

        if instr.f_control:
            self._predict_control(ctx, node)
            ctx.fetch_pc = node.current_next_pc
        else:
            ctx.fetch_pc = pc + 1
            if instr.op is Op.HALT:
                ctx.stalled = True

        if instr.f_branch or instr.f_indirect:
            self._incomplete_branches[node.uid] = node
            if self._oldest_gate_valid:
                oldest = self._oldest_gate
                if oldest is None or node.order < oldest.order:
                    self._oldest_gate = node

        # Ready bookkeeping: issue no earlier than fetch + 2 (dispatch stage).
        if self._operands_ready(node):
            self._push_ready(node, self.cycle + 2)
        return node

    def _predict_control(self, ctx: _Context, node: DynInstr) -> None:
        cfg = self.config
        node.ras_snapshot = self.frontend.ras.snapshot()
        history = ctx.ghr
        if cfg.oracle_global_history and node.instr.f_branch:
            entry_index = self._golden_index(node)
            if 0 <= entry_index < len(self.golden.history_before):
                history = self.golden.history_before[entry_index]
        node.history_used = history
        prediction = self.frontend.predict(node.instr, node.pc, history)
        node.predicted_taken = prediction.taken
        node.predicted_next_pc = prediction.next_pc
        node.current_taken = prediction.taken
        node.current_next_pc = prediction.next_pc
        if node.instr.f_branch:
            ctx.ghr = self.frontend.push_history(ctx.ghr, prediction.taken)
            if node.instr.target <= node.pc:
                # Backward branch: remember loop top / loop exit targets.
                self._loop_targets.add(prediction.next_pc)
        elif node.instr.f_return:
            self._return_targets.add(prediction.next_pc)

    def _operands_ready(self, node: DynInstr) -> bool:
        t1, t2 = node.src1_tag, node.src2_tag
        return (t1 is None or t1.ready) and (t2 is None or t2.ready)

    def _push_ready(self, node: DynInstr, eligible: int) -> None:
        if node.in_ready:
            return
        node.in_ready = True
        heapq.heappush(self._ready, (eligible, node.order, node.uid, node))

    def _wake(self, node: DynInstr, eligible: int) -> None:
        """A source tag broadcast a new value (or rename repair): reissue."""
        if not node.alive:
            return
        if node.issue_count == 0 and not self._operands_ready(node):
            return
        self._push_ready(node, max(eligible, node.dispatch_cycle + 2))

    # ==================================================================
    # issue & execute

    def _issue_phase(self) -> None:
        budget = self.config.width
        issued = 0
        ready = self._ready
        pop = heapq.heappop
        while ready and budget > 0:
            eligible, _, _, node = ready[0]
            if eligible > self.cycle:
                break
            pop(ready)
            node.in_ready = False
            if not node.alive:
                continue
            self._execute(node)
            budget -= 1
            issued += 1
        if issued:
            self.stats.stage_issue_cycles += 1

    def _execute(self, node: DynInstr) -> None:
        self.stats.issues_total += 1
        node.issue_count += 1
        if node.first_issue_cycle < 0:
            node.first_issue_cycle = self.cycle
        if node.fetched_under_mp and node.issued_under_mp:
            node.reissued_after_mp = True
        node.inflight = True
        instr = node.instr
        a = node.src1_tag.value if node.src1_tag is not None else 0
        b = node.src2_tag.value if node.src2_tag is not None else 0
        if node.src1_tag is not None:
            node.src1_version = node.src1_tag.version
        if node.src2_tag is not None:
            node.src2_version = node.src2_tag.version
        result = evaluate(instr, node.pc, a, b)
        latency = self._lat[instr.opcode]
        if instr.f_load:
            node.addr = result.addr
            latency = 1 + self.cache.access(result.addr)
        elif instr.f_store:
            node.prev_addr = node.addr
            node.addr = result.addr
            node.store_value = result.store_value
        elif instr.f_control:
            node.outcome_taken = result.taken
            node.outcome_next_pc = result.next_pc
            node.value = result.value  # call link address
        else:
            node.value = result.value
        done = self.cycle + latency
        self._completing.setdefault(done, []).append((node, node.issue_count))

    # ==================================================================
    # completion

    def _complete_phase(self) -> None:
        events = self._completing.pop(self.cycle, None)
        if events:
            for node, token in events:
                if not node.alive or token != node.issue_count:
                    continue
                node.inflight = False
                self._complete(node)
        if self._pending_branches:
            still_pending: list[tuple[DynInstr, int]] = []
            for node, token in self._pending_branches:
                if not node.alive or token != node.issue_count:
                    continue
                if not self._try_complete_branch(node):
                    still_pending.append((node, token))
            self._pending_branches = still_pending
        if self._any_completed:
            self.stats.stage_complete_cycles += 1
            self._any_completed = False
        if self._any_recovered:
            self.stats.stage_recover_cycles += 1
            self._any_recovered = False

    def _complete(self, node: DynInstr) -> None:
        instr = node.instr
        if instr.f_branch or instr.f_indirect:
            if not self._try_complete_branch(node):
                self._pending_branches.append((node, node.issue_count))
            return
        node.completed = True
        self._any_completed = True
        if instr.f_load:
            source = self.lsq.forward_source(node)
            if source is not None:
                value = source.store_value
                node.fwd_store = source
            else:
                value = self.committed_mem.get(node.addr, 0)
                node.fwd_store = None
            node.value = value
            self._broadcast(node)
        elif instr.f_store:
            self.lsq.store_resolved(node)
            self._store_executed(node)
        else:
            self._broadcast(node)

    def _broadcast(self, node: DynInstr) -> None:
        tag = node.dest_tag
        if tag is None:
            return
        if tag.broadcast(node.value):
            # _wake only pushes onto the ready heap — it never mutates the
            # consumer list — so iterating the live list directly is safe
            # (the old defensive copy allocated per broadcast).
            wake = self._wake
            cycle = self.cycle
            dead = 0
            for consumer in tag.consumers:
                if consumer.alive:
                    if consumer is not node:
                        wake(consumer, cycle)
                else:
                    dead += 1
            if dead > 8 and dead * 2 > len(tag.consumers):
                tag.consumers = [c for c in tag.consumers if c.alive]

    def _store_executed(self, node: DynInstr) -> None:
        addrs = {node.addr}
        if node.prev_addr is not None:
            addrs.add(node.prev_addr)  # loads bound to the stale address
        affected = self.lsq.loads_affected_by(node, addrs)
        for load in affected:
            if load.fwd_store is node and load.value == node.store_value:
                continue  # already forwarded the right value
            self.stats.reissues_memory += 1
            self._wake(load, self.cycle + 1)  # 1-cycle squash penalty

    # ------------------------------------------------------------------
    # branch completion (gating models of Appendix A.2)

    def _oldest_incomplete_branch(self) -> DynInstr | None:
        """Oldest alive incomplete branch, maintained event-style: the
        cache survives until its node completes or is squashed (dispatch
        repairs it in place), so in-order gating is one order compare
        instead of a scan over every incomplete branch."""
        if not self._oldest_gate_valid:
            oldest = None
            for other in self._incomplete_branches.values():
                if other.alive and not other.completed and (
                    oldest is None or other.order < oldest.order
                ):
                    oldest = other
            self._oldest_gate = oldest
            self._oldest_gate_valid = True
        return self._oldest_gate

    def _branch_gates_open(self, node: DynInstr) -> bool:
        if self._gate_in_order:
            oldest = self._oldest_incomplete_branch()
            if oldest is not None and oldest.order < node.order:
                return False
        if self._gate_stores:
            if self.lsq.unresolved_older_stores(node):
                return False
        return True

    def _would_be_false_misprediction(self, node: DynInstr) -> bool:
        entry = self._golden_entry_for(node)
        if entry is None:
            return False
        return entry.next_pc == node.current_next_pc

    def _try_complete_branch(self, node: DynInstr) -> bool:
        if not self._branch_gates_open(node):
            return False
        mismatch = node.outcome_next_pc != node.current_next_pc
        if (
            mismatch
            and self.config.hide_false_mispredictions
            and self._would_be_false_misprediction(node)
        ):
            return False  # oracle delays completion until operands correct
        node.completed = True
        self._any_completed = True
        self._incomplete_branches.pop(node.uid, None)
        if self._oldest_gate is node:
            self._oldest_gate_valid = False
        if node.dest_tag is not None:  # calls write the link register
            self._broadcast(node)
        if mismatch:
            self._recover(node)
        return True

    # ==================================================================
    # recovery (Sections 3.1, 4; Appendix A.1)

    def _find_reconvergent(self, branch: DynInstr) -> DynInstr | None:
        policy = self.config.reconv_policy
        if policy is ReconvPolicy.NONE:
            return None
        if policy is ReconvPolicy.POSTDOM:
            if not branch.instr.f_branch:
                return None
            target = self.reconv_table.reconvergent_pc(branch.pc)
            if target is None:
                return None
            candidates = {target}
        else:
            backward = (
                branch.instr.f_branch and branch.instr.target <= branch.pc
            )
            if policy.uses_ltb and backward:
                candidates = {branch.pc + 1}  # not-taken target of the loop branch
            else:
                candidates = set()
                if policy.uses_return:
                    candidates |= self._return_targets
                if policy.uses_loop:
                    candidates |= self._loop_targets
                if not candidates:
                    return None
        # An outstanding restart's unfilled gap makes everything beyond it
        # a *later* dynamic instance of any matching PC: searching across
        # it would reconverge onto the wrong instance and splice whole
        # iterations out of the window.  Stop at the first open gap.
        gap_markers = {
            ctx.insert_point for ctx in self.contexts if ctx.phase == "restart"
        }
        node = branch.next
        tail = self.rob.tail_sentinel
        while node is not tail:
            if node.pc in candidates:
                return node
            if node in gap_markers:
                return None
            node = node.next
        return None

    def _classify_misprediction(self, branch: DynInstr) -> bool:
        """Record true/false misprediction stats; returns False-ness."""
        entry = self._golden_entry_for(branch)
        false_mp = entry is not None and entry.next_pc == branch.current_next_pc
        if false_mp:
            self.stats.false_mispredictions += 1
        else:
            self.stats.true_mispredictions += 1
        for collector in self.tfr_collectors:
            collector.record(branch.pc, branch.history_used, false_mp)
        return false_mp

    def _recover(self, branch: DynInstr) -> None:
        """The branch's computed outcome contradicts the fetched path."""
        self.stats.recoveries += 1
        self._any_recovered = True
        self._classify_misprediction(branch)
        reconv = self._find_reconvergent(branch)

        if reconv is None:
            self.stats.full_squashes += 1
            self._full_squash(branch)
            return

        # Preemption of an active restart (Appendix A.1).
        if self.contexts and self.config.preemption is Preemption.SIMPLE:
            current = self._active_context()
            if current.branch is not branch and current.phase == "restart":
                self.stats.preemptions += 1
                subsumed = (
                    branch.order < current.branch.order
                    and reconv.order >= current.branch.order
                )
                if not subsumed:
                    # CASES 1 and 3: preempt the active restart by squashing
                    # from its reconvergent point on; its partially inserted
                    # path becomes the window tail and plain fetch resumes
                    # it (the simple sequencer remembers only one restart).
                    self._preempt_simple(current)
                    if not branch.alive:
                        return  # the new misprediction was squashed with the tail
                # CASE 2 (subsumed): the new recovery's own squash region
                # covers the current restart; nothing special to do.
        elif self.contexts:
            self.stats.preemptions += 1
        self.stats.reconverged_recoveries += 1

        # Selectively squash the incorrect control-dependent region.
        removed = 0
        node = reconv.prev
        while node is not branch:
            prev = node.prev
            self._squash_node(node)
            removed += 1
            node = prev
        self.stats.removed_cd_instructions += removed

        # Table 2/3 bookkeeping over the preserved CI region (direct link
        # traversal: this runs once per reconverged recovery over up to a
        # window's worth of nodes).
        preserved = 0
        ci = reconv
        tail = self.rob.tail_sentinel
        while ci is not tail:
            preserved += 1
            ci.fetched_under_mp = True
            ci.issued_under_mp = ci.issue_count > 0
            ci.reissued_after_mp = False
            ci = ci.next
        self.stats.ci_instructions_preserved += preserved

        # Build the restart context.
        ctx = _Context(
            fetch_pc=branch.outcome_next_pc,
            ghr=self._history_after(branch),
            rmap=self._map_after(branch),
        )
        ctx.branch = branch
        ctx.reconv = reconv
        ctx.insert_point = branch
        ctx.phase = "restart"
        ctx.start_cycle = self.cycle
        branch.current_taken = branch.outcome_taken
        branch.current_next_pc = branch.outcome_next_pc
        branch.recovering = True
        if branch.instr.f_branch:
            self.frontend.ras.restore(branch.ras_snapshot)
        # Prune contexts invalidated by the squash (including any stale
        # context for this same branch), then activate the new one.
        self.contexts = [c for c in self.contexts if c.branch is not branch]
        self._prune_contexts()
        self.contexts.append(ctx)

    def _history_up_to(self, ctx: _Context, stop: DynInstr, inclusive: bool) -> int:
        """Reconstruct the global history at ``stop`` from the recovered
        branch's (possibly walk-corrected) fetch history plus the current
        directions of every live branch in between."""
        ghr = self._history_after(ctx.branch)
        if stop is ctx.branch:
            return ghr
        node = ctx.branch.next
        tail = self.rob.tail_sentinel
        push = self.frontend.push_history
        while node is not tail:
            if not inclusive and node is stop:
                break
            if node.alive and node.instr.f_branch:
                ghr = push(ghr, node.current_taken)
            if inclusive and node is stop:
                break
            node = node.next
        return ghr

    def _preempt_simple(self, current: _Context) -> None:
        """Simple preemption: abandon the active restart, squashing from
        its reconvergent point on (paper A.1.1 CASE 3)."""
        if current.reconv is not None and current.reconv.alive:
            self._squash_after(current.reconv.prev)
        self.frontier.fetch_pc = current.fetch_pc
        self.frontier.ghr = current.ghr
        tail = self.rob.tail
        self.frontier.rmap = self._map_after(
            tail if tail is not None else self.rob.head_sentinel
        )
        self.frontier.segment = None
        self.frontier.stalled = current.stalled
        for ctx in self.contexts:
            if ctx.branch is not None and ctx.branch.alive:
                ctx.branch.recovering = False
        self.contexts.clear()

    def _history_after(self, branch: DynInstr) -> int:
        if branch.instr.f_branch:
            return self.frontend.push_history(branch.history_used, branch.outcome_taken)
        return branch.history_used

    def _map_after(self, anchor: DynInstr) -> list:
        """Rename map just after ``anchor`` executes, rebuilt forward from
        the commit-side map over the live window contents.  Immune to any
        amount of prior insertion, removal and redispatch.

        Memoized per (window epoch, anchor): a recovery builds this map
        and the sequencer's reactivation immediately rebuilds it for the
        same anchor, so repeated walks within one epoch are one dict hit.
        Callers mutate the returned map, so each call hands out a copy."""
        if self._map_cache_epoch != self._map_epoch:
            self._map_cache.clear()
            self._map_cache_epoch = self._map_epoch
        snap = self._map_cache.get(anchor.uid)
        if snap is None:
            snap = list(self.retired_map)
            node = self.rob.head_sentinel.next
            tail = self.rob.tail_sentinel
            while node is not tail:
                if node.dest_arch is not None:
                    snap[node.dest_arch] = node.dest_tag
                if node is anchor:
                    break
                node = node.next
            self._map_cache[anchor.uid] = snap
        return list(snap)

    def _full_squash(self, branch: DynInstr) -> None:
        rmap = self._map_after(branch)
        node = self.rob.tail
        while node is not None and node is not branch:
            prev = node.prev
            self._squash_node(node)
            node = prev
            if node is self.rob.head_sentinel:
                break
        branch.current_taken = branch.outcome_taken
        branch.current_next_pc = branch.outcome_next_pc
        self.frontier.rmap = rmap
        self.frontier.fetch_pc = branch.outcome_next_pc
        self.frontier.ghr = self._history_after(branch)
        self.frontier.segment = None
        self.frontier.stalled = False
        if branch.ras_snapshot is not None:
            self.frontend.ras.restore(branch.ras_snapshot)
        self._prune_contexts()

    def _squash_after(self, last_kept: DynInstr) -> None:
        """Squash every instruction after ``last_kept`` (tail-first)."""
        node = self.rob.tail
        while node is not None and node is not last_kept:
            prev = node.prev
            self._squash_node(node)
            node = prev
            if node is self.rob.head_sentinel:
                break

    def _squash_node(self, node: DynInstr) -> None:
        self._needs_remap = True  # captured maps may now reference the dead
        self._map_epoch += 1
        node.squashed = True
        was_store = node.instr.f_store and node.completed
        addr = node.addr
        self.rob.remove(node)
        self.lsq.drop(node)
        if self._incomplete_branches.pop(node.uid, None) is not None:
            if self._oldest_gate is node:
                self._oldest_gate_valid = False
        if was_store:
            for load in self.lsq.loads_affected_by(node, {addr}):
                self.stats.reissues_memory += 1
                self._wake(load, self.cycle + 1)

    def _prune_contexts(self) -> None:
        """Drop contexts invalidated by a squash.

        A context dies when its branch was squashed, or when a nested
        recovery squashed its insertion chain — in the latter case the
        nested recovery's own context (or the redirected frontier)
        subsumes the remaining gap, because the squashed branch lay on
        this context's correct control-dependent path."""
        kept = []
        for ctx in self.contexts:
            if ctx.branch is not None and not ctx.branch.alive:
                continue
            if ctx.phase == "restart" and ctx.insert_point is not None and not (
                ctx.insert_point.alive or ctx.insert_point is ctx.branch
            ):
                continue
            if ctx.reconv is not None and not ctx.reconv.alive:
                # Reconvergent point squashed: the context degenerates to
                # plain tail fetch once it reaches the top of the stack.
                ctx.reconv = None
            kept.append(ctx)
        for ctx in self.contexts:
            if ctx not in kept and ctx.branch is not None and ctx.branch.alive:
                ctx.branch.recovering = False
        self.contexts = kept

    # ==================================================================
    # sequencer: restart fetch, redispatch walk, frontier fetch

    def _sequencer_phase(self) -> None:
        if self.contexts:
            ctx = self._active_context()
            if ctx is not self._last_active or self._needs_remap:
                self._reactivate(ctx)
                self._last_active = ctx
                self._needs_remap = False
            if ctx.phase == "restart":
                self._restart_fetch(ctx)
            if ctx is self._active_context() and ctx.phase == "redispatch":
                self._redispatch_walk(ctx)
            return
        self._last_active = None
        self._frontier_fetch()

    def _reactivate(self, ctx: _Context) -> None:
        """A context gained control of the sequencer: rebuild its rename
        map and global-history register, since recoveries serviced in
        between may have squashed, remapped or re-predicted instructions
        its captured state depends on."""
        if ctx.phase == "restart":
            ctx.rmap = self._map_after(ctx.insert_point)
            ctx.ghr = self._history_up_to(ctx, ctx.insert_point, inclusive=True)
        elif ctx.phase == "redispatch":
            cursor = ctx.walk_cursor
            while cursor is not None and not cursor.alive and cursor is not self.rob.tail_sentinel:
                cursor = cursor.next
            if cursor is None or cursor is self.rob.tail_sentinel:
                ctx.walk_cursor = self.rob.tail_sentinel
                tail = self.rob.tail
                ctx.rmap = self._map_after(
                    tail if tail is not None else self.rob.head_sentinel
                )
            else:
                ctx.walk_cursor = cursor
                ctx.rmap = self._map_after(cursor.prev)
                ctx.ghr = self._history_up_to(ctx, cursor, inclusive=False)

    def _frontier_fetch(self) -> None:
        ctx = self.frontier
        if ctx.stalled:
            return
        budget = self.config.width
        fetched_before = self.stats.fetched
        while budget > 0 and not self.rob.full and not ctx.stalled:
            if self._dispatch(ctx, ctx.fetch_pc) is None:
                break
            budget -= 1
        if self.stats.fetched != fetched_before:
            self.stats.stage_fetch_cycles += 1

    def _restart_fetch(self, ctx: _Context) -> None:
        if ctx.reconv is not None and not ctx.reconv.alive:
            ctx.reconv = None
        if ctx.reconv is None:
            # The reconvergent point is gone: this restart is simply the
            # window tail, so it continues as the frontier.
            self._context_to_frontier(ctx)
            return
        budget = self.config.width
        while budget > 0:
            if ctx.reconv is not None and ctx.fetch_pc == ctx.reconv.pc:
                self._finish_restart(ctx)
                return
            if ctx.stalled:
                self._finish_restart(ctx)  # ran off the program: give up
                return
            if self.rob.full:
                if not self._squash_youngest_ci(ctx):
                    return  # cannot make room this cycle
                continue
            if self._dispatch(ctx, ctx.fetch_pc) is None:
                self._finish_restart(ctx)
                return
            budget -= 1
        if ctx.reconv is not None and ctx.fetch_pc == ctx.reconv.pc:
            self._finish_restart(ctx)

    def _squash_youngest_ci(self, ctx: _Context) -> bool:
        """Make room for a restart by squashing the youngest instruction
        (paper Sec 3.2.2).  Returns False if nothing can be squashed.

        The frontier is backed up to the victim so it is refetched after
        the restart/redispatch completes (whose final walk map becomes
        the frontier map, keeping renaming consistent)."""
        victim = self.rob.tail
        if victim is None:
            return False
        if victim is ctx.insert_point or victim is ctx.branch:
            return False  # would eat the restart being serviced
        self.stats.squashed_ci_for_restart += 1
        # Back the frontier up so the victim is refetched later; GHR, RAS
        # and the rename map are all regenerated by the redispatch walk,
        # which ends exactly at the new tail.
        self.frontier.fetch_pc = victim.pc
        self.frontier.stalled = False
        self.frontier.segment = None
        self._squash_node(victim)
        self._prune_contexts()
        if ctx not in self.contexts or ctx.reconv is None:
            return False  # the restart itself was invalidated by the squash
        return True

    def _context_to_frontier(self, ctx: _Context) -> None:
        if ctx.branch is not None:
            ctx.branch.recovering = False
        self.frontier.fetch_pc = ctx.fetch_pc
        self.frontier.ghr = ctx.ghr
        # The context's captured map may reference instructions squashed
        # since it was built; the live window tail is the truth.
        tail = self.rob.tail
        self.frontier.rmap = self._map_after(
            tail if tail is not None else self.rob.head_sentinel
        )
        self.frontier.segment = ctx.segment
        self.frontier.stalled = ctx.stalled
        self.contexts.remove(ctx)

    def _finish_restart(self, ctx: _Context) -> None:
        self.stats.restart_count += 1
        self.stats.restart_cycles_total += self.cycle - ctx.start_cycle + 1
        self.stats.inserted_cd_instructions += ctx.inserted
        if ctx.reconv is None or not ctx.reconv.alive:
            self._context_to_frontier(ctx)
            return
        ctx.phase = "redispatch"
        ctx.walk_cursor = ctx.reconv
        ctx.walk_ras = None
        if self.config.instant_redispatch:
            self._redispatch_walk(ctx, instant=True)

    def _redispatch_walk(self, ctx: _Context, instant: bool = False) -> None:
        """Walk the CI region: remap sources, re-predict branches."""
        budget = self.rob.window_size if instant else self.config.width
        rmap = ctx.rmap
        node = ctx.walk_cursor
        tail = self.rob.tail_sentinel
        while node is not tail and budget > 0:
            if not node.alive:
                node = node.next
                continue
            overturned = self._redispatch_node(ctx, node, rmap)
            budget -= 1
            if overturned:
                return  # context finished inside the overturn handler
            node = node.next
        if node is tail:
            self._finish_redispatch(ctx)
        else:
            ctx.walk_cursor = node

    def _redispatch_node(self, ctx: _Context, node: DynInstr, rmap: list) -> bool:
        instr = node.instr
        repaired = False
        if instr.reads_rs1:
            tag = rmap[instr.rs1]
            if tag is not node.src1_tag:
                node.src1_tag = tag
                tag.consumers.append(node)
                repaired = True
        if instr.reads_rs2:
            tag = rmap[instr.rs2]
            if tag is not node.src2_tag:
                node.src2_tag = tag
                tag.consumers.append(node)
                repaired = True
        if repaired:
            self.stats.ci_rename_repairs += 1
            if node.issue_count > 0:
                self.stats.reissues_register += 1
            self._wake(node, self.cycle + 1)
        if node.dest_arch is not None:
            rmap[node.dest_arch] = node.dest_tag

        # RAS replay so the frontier stack is exact after the walk.
        if instr.f_call:
            self.frontend.ras.push(node.pc + 1)
        elif instr.f_return:
            self.frontend.ras.pop()

        if instr.f_branch:
            return self._repredict(ctx, node)
        return False

    def _repredict(self, ctx: _Context, node: DynInstr) -> bool:
        """Re-predict one CI branch during redispatch (Appendix A.3.2).

        Returns True when the prediction was overturned (everything after
        the branch is squashed and fetch redirects)."""
        mode = self.config.repredict_mode
        direction = node.current_taken
        if mode is RepredictMode.NONE:
            pass
        elif node.completed:
            direction = node.outcome_taken  # force the predictor
        elif mode is RepredictMode.ORACLE:
            entry = self._golden_entry_for(node)
            if entry is not None:
                direction = entry.taken
        else:
            direction = self.frontend.gshare.predict(node.pc, ctx.ghr)
        node.history_used = ctx.ghr
        if direction != node.current_taken:
            self.stats.repredict_events += 1
            entry = self._golden_entry_for(node)
            if entry is not None and entry.taken == node.current_taken:
                self.stats.repredict_overturned_correct += 1
            self._overturn(ctx, node, direction)
            return True
        ctx.ghr = self.frontend.push_history(ctx.ghr, direction)
        return False

    def _overturn(self, ctx: _Context, node: DynInstr, direction: bool) -> None:
        """A re-prediction changed a CI branch's direction: squash after it
        and resume plain fetch down the new path."""
        self._squash_after(node)
        node.current_taken = direction
        node.current_next_pc = node.instr.target if direction else node.pc + 1
        node.predicted_taken = direction
        self.frontier.fetch_pc = node.current_next_pc
        self.frontier.ghr = self.frontend.push_history(ctx.ghr, direction)
        self.frontier.rmap = ctx.rmap
        self.frontier.segment = None
        self.frontier.stalled = False
        if ctx.branch is not None:
            ctx.branch.recovering = False
        if ctx in self.contexts:
            self.contexts.remove(ctx)
        self._prune_contexts()
        if self.contexts:
            # Some suspended context survived; it will republish the
            # frontier state when it completes.
            self._last_active = None

    def _finish_redispatch(self, ctx: _Context) -> None:
        if ctx.branch is not None:
            ctx.branch.recovering = False
        self.frontier.rmap = ctx.rmap
        self.frontier.ghr = ctx.ghr
        self.frontier.segment = None
        if ctx in self.contexts:
            self.contexts.remove(ctx)
        # Suspended contexts rebuild their maps when reactivated.

    # ==================================================================
    # retire

    def _retire_phase(self) -> None:
        budget = self.config.width
        retired_any = False
        golden = self.golden.entries
        n_golden = len(golden)
        tail = self.rob.tail_sentinel
        while budget > 0:
            node = self.rob.head
            if node is None:
                break
            if not node.completed or node.in_ready or node.inflight or node.recovering:
                break
            # Commit-time sequence check (real pipelines verify next-PC at
            # retirement): if the window successor does not continue this
            # instruction's committed path — possible after a mis-spliced
            # heuristic reconvergence — flush younger state and refetch.
            expected_next = (
                node.current_next_pc if node.instr.f_control else node.pc + 1
            )
            succ = node.next
            if succ is not tail and succ.pc != expected_next:
                self._sequence_repair(node, expected_next)
            entry = golden[self.retired_count] if self.retired_count < n_golden else None
            if entry is None or entry.pc != node.pc:
                raise CosimulationError(
                    f"retired pc {node.pc} but golden expects "
                    f"{entry.pc if entry else 'END'} at index {self.retired_count}",
                    snapshot=self.snapshot(),
                )
            self._check_and_commit(node, entry)
            if node.dest_arch is not None:
                self.retired_map[node.dest_arch] = node.dest_tag
            self.stats.issues_of_retired += node.issue_count
            node.retired = True
            retired_any = True
            self._map_epoch += 1
            self.lsq.drop(node)
            self.rob.retire(node)
            self.retired_count += 1
            self.stats.retired += 1
            budget -= 1
            if node.instr.op is Op.HALT:
                self.halted = True
                break
        if retired_any:
            self.stats.stage_retire_cycles += 1

    def _check_and_commit(self, node: DynInstr, entry) -> None:
        instr = node.instr
        if instr.f_store:
            if node.addr != entry.addr or node.store_value != entry.store_value:
                raise CosimulationError(
                    f"store at pc {node.pc}: simulated {node.addr}={node.store_value}, "
                    f"golden {entry.addr}={entry.store_value}",
                    snapshot=self.snapshot(),
                )
            self.committed_mem[node.addr] = node.store_value
        elif node.dest_tag is not None:
            if node.value != entry.value:
                raise CosimulationError(
                    f"pc {node.pc} ({instr.op.name}): simulated value {node.value}, "
                    f"golden {entry.value}",
                    snapshot=self.snapshot(),
                )
        if instr.f_control:
            if node.current_next_pc != entry.next_pc:
                raise CosimulationError(
                    f"control at pc {node.pc}: retiring down {node.current_next_pc}, "
                    f"golden goes to {entry.next_pc}",
                    snapshot=self.snapshot(),
                )
            # Train the predictor at retirement (delayed update, Sec 4.1).
            self.frontend.update(
                instr, node.pc, self.retire_ghr, entry.taken, entry.next_pc
            )
            if instr.f_branch or (instr.f_indirect and not instr.f_return):
                self.stats.branch_events += 1
                if node.predicted_next_pc != entry.next_pc:
                    self.stats.branch_mispredictions_retired += 1
            if instr.f_branch:
                self.retire_ghr = self.frontend.push_history(
                    self.retire_ghr, entry.taken
                )
        # Table 3 classification.
        if node.fetched_under_mp:
            self.stats.retired_fetch_saved += 1
            if node.issued_under_mp and not node.reissued_after_mp:
                self.stats.retired_work_saved += 1
            elif node.issued_under_mp:
                self.stats.retired_work_discarded += 1
            else:
                self.stats.retired_only_fetched += 1

    def _sequence_repair(self, node: DynInstr, expected_next: int) -> None:
        """Flush everything younger than the retiring instruction and
        refetch from its committed successor."""
        if self.config.strict_commit:
            succ = node.next
            raise CosimulationError(
                f"commit-time next-PC check failed at pc {node.pc}: committed "
                f"path continues at {expected_next} but the window holds pc "
                f"{succ.pc if succ is not self.rob.tail_sentinel else 'END'} — "
                "mis-spliced reconvergence under exact post-dominator info",
                snapshot=self.snapshot(),
            )
        self.stats.sequence_repairs += 1
        self._squash_after(node)
        for ctx in self.contexts:
            if ctx.branch is not None and ctx.branch.alive:
                ctx.branch.recovering = False
        self.contexts.clear()
        node.recovering = False
        self.frontier.fetch_pc = expected_next
        ghr = self.retire_ghr
        if node.instr.f_branch:
            ghr = self.frontend.push_history(ghr, node.outcome_taken)
        self.frontier.ghr = ghr
        self.frontier.rmap = self._map_after(node)
        self.frontier.segment = None
        self.frontier.stalled = False
        if node.ras_snapshot is not None:
            self.frontend.ras.restore(node.ras_snapshot)
            if node.instr.f_call:
                self.frontend.ras.push(node.pc + 1)
            elif node.instr.f_return:
                self.frontend.ras.pop()

    # ==================================================================

    def run(self) -> CoreStats:
        max_cycles = self.config.max_cycles
        watchdog = self.config.watchdog_cycles
        last_retired = self.retired_count
        last_progress_cycle = self.cycle
        while not self.halted:
            if self.cycle > max_cycles:
                raise SimulationHang(
                    f"exceeded the {max_cycles}-cycle budget",
                    snapshot=self.snapshot(),
                    kind="cycle-limit",
                )
            self._complete_phase()
            self._retire_phase()
            # Forward-progress watchdog: a window that stops retiring long
            # before max_cycles is a livelock (lost wakeup, stuck recovery),
            # not a slow program — fail fast with the machine state.
            if self.retired_count != last_retired:
                last_retired = self.retired_count
                last_progress_cycle = self.cycle
            elif self.cycle - last_progress_cycle >= watchdog:
                raise SimulationHang(
                    f"no instruction retired in {watchdog} cycles "
                    "(forward-progress watchdog)",
                    snapshot=self.snapshot(),
                    kind="livelock",
                )
            if self.halted:
                break
            self._issue_phase()
            fetched_before = self.stats.fetched
            self._sequencer_phase()
            if self.stats.fetched != fetched_before:
                self.stats.stage_dispatch_cycles += 1
            for hook in self._cycle_hooks:
                hook(self)
            self.cycle += 1
        self.stats.cycles = self.cycle + 1
        return self.stats


def simulate_core(
    program: Program,
    config: CoreConfig | None = None,
    golden: GoldenTrace | None = None,
    reconv_table: ReconvergenceTable | None = None,
) -> CoreStats:
    """Run one program through one detailed-machine configuration."""
    return Processor(program, config, golden, reconv_table).run()
