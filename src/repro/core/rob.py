"""Reorder buffer for the detailed core (paper Section 3.2.2, App. A.4).

The ROB is a doubly-linked list of dynamic instructions supporting
insertion and removal at arbitrary points — the structure restart
sequences need.  Logical order between any two entries is decided by
integer keys, maintained under one of two schemes (``CoreConfig
(order_scheme=...)`` / ``REPRO_ORDER``):

* ``v1`` — the seed's midpoint discipline: every insert (including tail
  appends) takes the midpoint of its neighbours' keys, and a full-window
  renumber respaces everything when a gap is exhausted.  Because appends
  halve the gap to the tail sentinel, a renumber fires every ~16
  dispatches — per fetch cycle at the paper's width.
* ``v2`` — renumber-free: tail appends (the hot path) take strictly
  monotonic sequence numbers spaced ``_SPACING`` apart, so keys are
  never rewritten and the order-index insert collapses to an append.
  Mid-window restart inserts take a low-biased step into the local gap
  (``lo + max(1, gap/256)``), leaving room for the right-chaining
  dispatch order of a restart sequence; only a pathologically nested
  restart chain can exhaust a gap, falling back to one full respace.

Both schemes yield the same architectural results — keys order the same
instructions the same way — but the ready heap captures key *values* at
push time, and a v1 renumber can rewrite keys between push and pop, so
same-cycle issue arbitration differs between schemes (v1 compares keys
from mixed numbering epochs; v2 keys are stable).  On most cells the
shift is confined to issue accounting; on recovery-heavy cells the
reordered completion of same-cycle branches can reorder recoveries and
cascade into timing statistics, while the retired stream stays pinned by
cosimulation (see ``repro.core.stats``).  Each scheme is pinned by its
own golden generation (``tests/goldens/``).

Segmentation (Appendix A.4) is modeled for capacity: instructions are
allocated into segments of ``segment_size`` entries; a partially used or
partially squashed segment still occupies ``segment_size`` window slots,
and a segment's slots are reclaimed only when every instruction in it
has retired or been squashed.
"""

from __future__ import annotations

from ..isa import Instruction
from .config import resolve_order_scheme
from .soa import OrderIndex

_SPACING = 1 << 16

#: v2 tail-sentinel key: far above any reachable sequence number (a run
#: would need ~2^46 dispatches to approach it), so the youngest real
#: instruction always has a huge gap to the sentinel and appends never
#: trigger gap maintenance.
_V2_TAIL = 1 << 62


class Segment:
    """Capacity-accounting unit of the segmented ROB."""

    __slots__ = ("live",)

    def __init__(self):
        self.live = 0


class DynInstr:
    """One dynamic instruction in flight."""

    __slots__ = (
        "uid",
        "pc",
        "instr",
        "prev",
        "next",
        "order",
        "segment",
        # rename
        "src1_tag",
        "src2_tag",
        "dest_tag",
        "dest_arch",
        "prev_tag",
        # execution state
        "dispatch_cycle",
        "issue_count",
        "inflight",
        "completed",
        "value",
        "addr",
        "prev_addr",
        "store_value",
        "fwd_store",
        "retired",
        "squashed",
        "in_ready",
        "src1_version",
        "src2_version",
        # control state
        "predicted_taken",
        "predicted_next_pc",
        "history_used",
        "ras_snapshot",
        "current_taken",
        "current_next_pc",
        "outcome_taken",
        "outcome_next_pc",
        "recovering",
        "first_issue_cycle",
        "value_final_cycle",
        "fetched_under_mp",
        "issued_under_mp",
        "reissued_after_mp",
    )

    def __init__(self, uid: int, pc: int, instr: Instruction):
        self.uid = uid
        self.pc = pc
        self.instr = instr
        self.prev = None
        self.next = None
        self.order = 0
        self.segment = None
        self.src1_tag = None
        self.src2_tag = None
        self.dest_tag = None
        self.dest_arch = None
        self.prev_tag = None
        self.dispatch_cycle = 0
        self.issue_count = 0
        self.inflight = False
        self.completed = False
        self.value = None
        self.addr = None
        self.prev_addr = None
        self.store_value = None
        self.fwd_store = None
        self.retired = False
        self.squashed = False
        self.in_ready = False
        self.src1_version = -1
        self.src2_version = -1
        self.predicted_taken = False
        self.predicted_next_pc = 0
        self.history_used = 0
        self.ras_snapshot = None
        self.current_taken = False
        self.current_next_pc = 0
        self.outcome_taken = False
        self.outcome_next_pc = 0
        self.recovering = False
        self.first_issue_cycle = -1
        self.value_final_cycle = -1
        self.fetched_under_mp = False
        self.issued_under_mp = False
        self.reissued_after_mp = False

    @property
    def alive(self) -> bool:
        return not (self.retired or self.squashed)

    def __repr__(self) -> str:  # debugging aid
        return f"<{self.uid}:{self.pc}:{self.instr.op.name}>"


class ReorderBuffer:
    """Doubly-linked list with order keys and segment capacity."""

    def __init__(
        self,
        window_size: int,
        segment_size: int = 1,
        soa_backend: str | None = None,
        order_scheme: str | None = None,
    ):
        if window_size % segment_size:
            raise ValueError("window_size must be a multiple of segment_size")
        self.window_size = window_size
        self.segment_size = segment_size
        self.order_scheme = resolve_order_scheme(order_scheme)
        self.head_sentinel = DynInstr(-1, -1, Instruction.__new__(Instruction))
        self.tail_sentinel = DynInstr(-2, -1, Instruction.__new__(Instruction))
        self.head_sentinel.next = self.tail_sentinel
        self.tail_sentinel.prev = self.head_sentinel
        self.head_sentinel.order = 0
        self._v2 = self.order_scheme == "v2"
        if self._v2:
            self.tail_sentinel.order = _V2_TAIL
            self._next_order = _SPACING  # next tail-append sequence number
            self._place = self._place_v2
        else:
            self.tail_sentinel.order = 2 * _SPACING
            self._place = self._place_v1
        self.count = 0  # live instructions
        self.segments_allocated = 0
        #: sorted order keys of every linked (alive) instruction — the
        #: incremental position index behind :meth:`index_of`, kept as a
        #: dense int64 column (:class:`repro.core.soa.OrderIndex`).
        #: Orders are unique under both schemes (a gap is respaced before
        #: it collapses), so one bisect recovers a node's window position
        #: in O(log n) instead of the O(window) head-to-node scan the
        #: golden-trace matching paid per branch completion.
        self._alive_orders = OrderIndex(window_size, backend=soa_backend)

    # ------------------------------------------------------------------
    # capacity

    @property
    def slots_used(self) -> int:
        if self.segment_size == 1:
            return self.count
        return self.segments_allocated * self.segment_size

    @property
    def full(self) -> bool:
        return self.slots_used >= self.window_size

    def alloc_into(self, segment: Segment | None) -> Segment:
        """Return the segment a new instruction should occupy, allocating a
        fresh one when ``segment`` is missing or full."""
        if segment is None or segment.live >= self.segment_size:
            segment = Segment()
            self.segments_allocated += 1
        return segment

    # ------------------------------------------------------------------
    # list structure

    def _renumber(self) -> None:
        order = 0
        node = self.head_sentinel
        linked = -2  # exclude both sentinels from the count
        while node is not None:
            node.order = order
            order += _SPACING
            node = node.next
            linked += 1
        self._alive_orders.renumber(linked, _SPACING)

    def _place_v1(self, node: DynInstr, after: DynInstr) -> None:
        succ = after.next
        node.prev = after
        node.next = succ
        after.next = node
        succ.prev = node
        # NOTE: the ready heap captures ``node.order`` in its sort keys
        # at push time — renumber *timing* is observable through
        # stale-key tie-breaks, and the v1 golden gate pins it.  Keys and
        # renumber points must stay exactly the seed's under this scheme.
        lo, hi = after.order, succ.order
        if hi - lo < 2:
            # Renumbering rebuilds the position index with ``node``
            # already linked; its midpoint order equals the renumbered
            # one, so the index entry is already correct.
            self._renumber()
            lo, hi = after.order, succ.order
            node.order = (lo + hi) // 2
            return
        node.order = (lo + hi) // 2
        self._alive_orders.insert(node.order)

    def _respace(self) -> None:
        """v2 fallback: respace every key after a restart-chain gap
        collapse (the caller's node is already linked, so it gets its
        slot here and the index refill already covers it)."""
        order = 0
        node = self.head_sentinel
        linked = -1  # exclude the head sentinel; the tail keeps _V2_TAIL
        tail = self.tail_sentinel
        while node is not tail:
            node.order = order
            order += _SPACING
            node = node.next
            linked += 1
        self._next_order = order
        self._alive_orders.renumber(linked, _SPACING)

    def _place_v2(self, node: DynInstr, after: DynInstr) -> None:
        succ = after.next
        node.prev = after
        node.next = succ
        after.next = node
        succ.prev = node
        if succ is self.tail_sentinel:
            # Hot path: frontier dispatch appends take the next sequence
            # number — no gap math, no renumber, and the order index
            # extends by one tail write.
            node.order = order = self._next_order
            self._next_order = order + _SPACING
            self._alive_orders.append(order)
            return
        # Restart insert: step a small fraction into the gap so the
        # right-chaining dispatch order of a restart sequence (each
        # instruction inserted after the previous one) fits hundreds of
        # entries before the gap thins.  Only deeply nested restart
        # chains can exhaust one, and then a single respace restores
        # full spacing everywhere.
        lo, hi = after.order, succ.order
        gap = hi - lo
        if gap < 2:
            self._respace()
            return
        node.order = lo + ((gap >> 8) or 1)
        self._alive_orders.insert(node.order)

    def insert_after(self, after: DynInstr, node: DynInstr, segment: Segment | None) -> Segment | None:
        """Link ``node`` after ``after``; returns the segment used."""
        self._place(node, after)
        self.count += 1
        if self.segment_size == 1:
            # One slot per instruction: capacity accounting is exactly
            # ``count``, so allocating a Segment per dispatch would be
            # pure bookkeeping overhead (node.segment stays None and
            # ``remove`` skips it).
            return None
        segment = self.alloc_into(segment)
        node.segment = segment
        segment.live += 1
        return segment

    def append(self, node: DynInstr, segment: Segment | None) -> Segment | None:
        if not self._v2:
            return self.insert_after(self.tail_sentinel.prev, node, segment)
        # v2 frontier-dispatch fast path: a tail append is one link splice,
        # one monotonic key and one index tail write, fused here to spare
        # the insert_after/_place call frames on the hottest loop in the
        # simulator (one call per fetched instruction).
        tail = self.tail_sentinel
        prev = tail.prev
        node.prev = prev
        node.next = tail
        prev.next = node
        tail.prev = node
        node.order = order = self._next_order
        self._next_order = order + _SPACING
        self._alive_orders.append(order)
        self.count += 1
        if self.segment_size == 1:
            return None
        segment = self.alloc_into(segment)
        node.segment = segment
        segment.live += 1
        return segment

    def remove(self, node: DynInstr) -> None:
        """Unlink a squashed instruction and release its window slot."""
        node.prev.next = node.next
        node.next.prev = node.prev
        segment = node.segment
        if segment is not None:
            segment.live -= 1
            if segment.live == 0:
                self.segments_allocated -= 1
        self.count -= 1
        self._alive_orders.remove(node.order)

    #: Unlink a retired instruction — same slot accounting as ``remove``,
    #: aliased rather than delegated (one call frame per retirement).
    retire = remove

    # ------------------------------------------------------------------
    # traversal

    @property
    def head(self) -> DynInstr | None:
        node = self.head_sentinel.next
        return node if node is not self.tail_sentinel else None

    @property
    def tail(self) -> DynInstr | None:
        node = self.tail_sentinel.prev
        return node if node is not self.head_sentinel else None

    def iter_from(self, node: DynInstr):
        """Iterate from ``node`` (inclusive) to the tail."""
        while node is not None and node is not self.tail_sentinel:
            yield node
            node = node.next

    def iter_all(self):
        yield from self.iter_from(self.head_sentinel.next)

    def index_of(self, node: DynInstr) -> int:
        """Window position of a linked node: the number of alive
        instructions logically older than it (O(log n) via the
        incrementally maintained order index)."""
        return self._alive_orders.position(node.order)

    def precedes(self, a: DynInstr, b: DynInstr) -> bool:
        """True if ``a`` is logically older than ``b``."""
        return a.order < b.order
