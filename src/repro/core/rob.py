"""Reorder buffer for the detailed core (paper Section 3.2.2, App. A.4).

The ROB is a doubly-linked window of dynamic instructions supporting
insertion and removal at arbitrary points — the structure restart
sequences need.  Since the columnar object model
(:class:`repro.core.soa.InstrPool`), an instruction is an integer
*handle* into the pool's columns and the links are two int columns
(``prev``/``next``) indexed by handle; the window boundaries are the
pool's permanent :data:`~repro.core.soa.HEAD` /
:data:`~repro.core.soa.TAIL` slots, so there are no sentinel objects
(and no uninitialized-``Instruction`` hack to fabricate them).

Logical order between any two entries is decided by integer keys in the
pool's ``order`` column, maintained under one of two schemes
(``CoreConfig(order_scheme=...)`` / ``REPRO_ORDER``):

* ``v1`` — the seed's midpoint discipline: every insert (including tail
  appends) takes the midpoint of its neighbours' keys, and a full-window
  renumber respaces everything when a gap is exhausted.  Because appends
  halve the gap to the tail boundary, a renumber fires every ~16
  dispatches — per fetch cycle at the paper's width.
* ``v2`` — renumber-free: tail appends (the hot path) take strictly
  monotonic sequence numbers spaced ``_SPACING`` apart, so keys are
  never rewritten and the order-index insert collapses to an append.
  Mid-window restart inserts take a low-biased step into the local gap
  (``lo + max(1, gap/256)``), leaving room for the right-chaining
  dispatch order of a restart sequence; only a pathologically nested
  restart chain can exhaust a gap, falling back to one full respace.

Both schemes yield the same architectural results — keys order the same
instructions the same way — but the ready heap captures key *values* at
push time, and a v1 renumber can rewrite keys between push and pop, so
same-cycle issue arbitration differs between schemes (v1 compares keys
from mixed numbering epochs; v2 keys are stable).  On most cells the
shift is confined to issue accounting; on recovery-heavy cells the
reordered completion of same-cycle branches can reorder recoveries and
cascade into timing statistics, while the retired stream stays pinned by
cosimulation (see ``repro.core.stats``).  Each scheme is pinned by its
own golden generation (``tests/goldens/``).

Segmentation (Appendix A.4) is modeled for capacity: instructions are
allocated into segments of ``segment_size`` entries; a partially used or
partially squashed segment still occupies ``segment_size`` window slots,
and a segment's slots are reclaimed only when every instruction in it
has retired or been squashed.
"""

from __future__ import annotations

from .config import resolve_order_scheme
from .soa import HEAD, TAIL, InstrPool, OrderIndex

_SPACING = 1 << 16

#: v2 tail-boundary key: far above any reachable sequence number (a run
#: would need ~2^46 dispatches to approach it), so the youngest real
#: instruction always has a huge gap to the boundary and appends never
#: trigger gap maintenance.
_V2_TAIL = 1 << 62

#: "no link" value of the pool's ``prev``/``next`` columns (outward
#: sides of the boundary slots only — every linked slot has real links)
NO_LINK = -1


class Segment:
    """Capacity-accounting unit of the segmented ROB."""

    __slots__ = ("live",)

    def __init__(self):
        self.live = 0


class ReorderBuffer:
    """Linked window over pool handles, with order keys and segments."""

    def __init__(
        self,
        window_size: int,
        segment_size: int = 1,
        soa_backend: str | None = None,
        order_scheme: str | None = None,
    ):
        if window_size % segment_size:
            raise ValueError("window_size must be a multiple of segment_size")
        self.window_size = window_size
        self.segment_size = segment_size
        self.order_scheme = resolve_order_scheme(order_scheme)
        #: the columnar instruction store: exactly the window plus the
        #: two boundary slots, since every slot is freed the moment it
        #: is unlinked at retire/squash
        self.pool = InstrPool(window_size + 2, backend=soa_backend)
        pool = self.pool
        pool.next[HEAD] = TAIL
        pool.prev[TAIL] = HEAD
        pool.prev[HEAD] = NO_LINK
        pool.next[TAIL] = NO_LINK
        pool.order[HEAD] = 0
        self._v2 = self.order_scheme == "v2"
        if self._v2:
            pool.order[TAIL] = _V2_TAIL
            self._next_order = _SPACING  # next tail-append sequence number
            self._place = self._place_v2
        else:
            pool.order[TAIL] = 2 * _SPACING
            self._place = self._place_v1
        self.count = 0  # live instructions
        self.segments_allocated = 0
        #: sorted order keys of every linked (alive) instruction — the
        #: incremental position index behind :meth:`index_of`, kept as a
        #: dense int64 column (:class:`repro.core.soa.OrderIndex`).
        #: Orders are unique under both schemes (a gap is respaced before
        #: it collapses), so one bisect recovers a slot's window position
        #: in O(log n) instead of the O(window) head-to-node scan the
        #: golden-trace matching paid per branch completion.
        self._alive_orders = OrderIndex(window_size, backend=soa_backend)

    # ------------------------------------------------------------------
    # capacity

    @property
    def slots_used(self) -> int:
        if self.segment_size == 1:
            return self.count
        return self.segments_allocated * self.segment_size

    @property
    def full(self) -> bool:
        return self.slots_used >= self.window_size

    def alloc_into(self, segment: Segment | None) -> Segment:
        """Return the segment a new instruction should occupy, allocating a
        fresh one when ``segment`` is missing or full."""
        if segment is None or segment.live >= self.segment_size:
            segment = Segment()
            self.segments_allocated += 1
        return segment

    # ------------------------------------------------------------------
    # list structure

    def _renumber(self) -> None:
        pool = self.pool
        order_col = pool.order
        next_col = pool.next
        order = 0
        h = HEAD
        linked = -2  # exclude both boundary slots from the count
        while h != NO_LINK:
            order_col[h] = order
            order += _SPACING
            h = next_col[h]
            linked += 1
        self._alive_orders.renumber(linked, _SPACING)

    def _place_v1(self, h: int, after: int) -> None:
        pool = self.pool
        prev_col = pool.prev
        next_col = pool.next
        order_col = pool.order
        succ = next_col[after]
        prev_col[h] = after
        next_col[h] = succ
        next_col[after] = h
        prev_col[succ] = h
        # NOTE: the ready heap captures ``order[h]`` in its sort keys
        # at push time — renumber *timing* is observable through
        # stale-key tie-breaks, and the v1 golden gate pins it.  Keys and
        # renumber points must stay exactly the seed's under this scheme.
        lo, hi = order_col[after], order_col[succ]
        if hi - lo < 2:
            # Renumbering rebuilds the position index with ``h``
            # already linked; its midpoint order equals the renumbered
            # one, so the index entry is already correct.
            self._renumber()
            lo, hi = order_col[after], order_col[succ]
            order_col[h] = (lo + hi) // 2
            return
        order = (lo + hi) // 2
        order_col[h] = order
        self._alive_orders.insert(order)

    def _respace(self) -> None:
        """v2 fallback: respace every key after a restart-chain gap
        collapse (the caller's slot is already linked, so it gets its
        key here and the index refill already covers it)."""
        pool = self.pool
        order_col = pool.order
        next_col = pool.next
        order = 0
        h = HEAD
        linked = -1  # exclude the head boundary; the tail keeps _V2_TAIL
        while h != TAIL:
            order_col[h] = order
            order += _SPACING
            h = next_col[h]
            linked += 1
        self._next_order = order
        self._alive_orders.renumber(linked, _SPACING)

    def _place_v2(self, h: int, after: int) -> None:
        pool = self.pool
        prev_col = pool.prev
        next_col = pool.next
        order_col = pool.order
        succ = next_col[after]
        prev_col[h] = after
        next_col[h] = succ
        next_col[after] = h
        prev_col[succ] = h
        if succ == TAIL:
            # Hot path: frontier dispatch appends take the next sequence
            # number — no gap math, no renumber, and the order index
            # extends by one tail write.
            order_col[h] = order = self._next_order
            self._next_order = order + _SPACING
            self._alive_orders.append(order)
            return
        # Restart insert: step a small fraction into the gap so the
        # right-chaining dispatch order of a restart sequence (each
        # instruction inserted after the previous one) fits hundreds of
        # entries before the gap thins.  Only deeply nested restart
        # chains can exhaust one, and then a single respace restores
        # full spacing everywhere.
        lo, hi = order_col[after], order_col[succ]
        gap = hi - lo
        if gap < 2:
            self._respace()
            return
        order = lo + ((gap >> 8) or 1)
        order_col[h] = order
        self._alive_orders.insert(order)

    def insert_after(self, after: int, h: int, segment: Segment | None) -> Segment | None:
        """Link slot ``h`` after ``after``; returns the segment used."""
        self._place(h, after)
        self.count += 1
        if self.segment_size == 1:
            # One slot per instruction: capacity accounting is exactly
            # ``count``, so allocating a Segment per dispatch would be
            # pure bookkeeping overhead (the segment column stays None
            # and ``remove`` skips it).
            return None
        segment = self.alloc_into(segment)
        self.pool.segment[h] = segment
        segment.live += 1
        return segment

    def append(self, h: int, segment: Segment | None) -> Segment | None:
        pool = self.pool
        if not self._v2:
            return self.insert_after(pool.prev[TAIL], h, segment)
        # v2 frontier-dispatch fast path: a tail append is one link splice,
        # one monotonic key and one index tail write, fused here to spare
        # the insert_after/_place call frames on the hottest loop in the
        # simulator (one call per fetched instruction).
        prev_col = pool.prev
        next_col = pool.next
        prev = prev_col[TAIL]
        prev_col[h] = prev
        next_col[h] = TAIL
        next_col[prev] = h
        prev_col[TAIL] = h
        pool.order[h] = order = self._next_order
        self._next_order = order + _SPACING
        self._alive_orders.append(order)
        self.count += 1
        if self.segment_size == 1:
            return None
        segment = self.alloc_into(segment)
        pool.segment[h] = segment
        segment.live += 1
        return segment

    def remove(self, h: int) -> None:
        """Unlink a dead slot, release its window slot, recycle it."""
        pool = self.pool
        prev_col = pool.prev
        next_col = pool.next
        prev, nxt = prev_col[h], next_col[h]
        next_col[prev] = nxt
        prev_col[nxt] = prev
        segment = pool.segment[h]
        if segment is not None:
            segment.live -= 1
            if segment.live == 0:
                self.segments_allocated -= 1
        self.count -= 1
        self._alive_orders.remove(pool.order[h])
        pool.free(h)

    #: Unlink a retired instruction — same slot accounting as ``remove``,
    #: aliased rather than delegated (one call frame per retirement).
    retire = remove

    # ------------------------------------------------------------------
    # traversal

    @property
    def head(self) -> int | None:
        h = self.pool.next[HEAD]
        return h if h != TAIL else None

    @property
    def tail(self) -> int | None:
        h = self.pool.prev[TAIL]
        return h if h != HEAD else None

    def iter_from(self, h: int):
        """Iterate handles from ``h`` (inclusive) to the tail boundary."""
        next_col = self.pool.next
        while h != TAIL and h != NO_LINK:
            yield h
            h = next_col[h]

    def iter_all(self):
        yield from self.iter_from(self.pool.next[HEAD])

    def index_of(self, h: int) -> int:
        """Window position of a linked slot: the number of alive
        instructions logically older than it (O(log n) via the
        incrementally maintained order index)."""
        return self._alive_orders.position(self.pool.order[h])

    def precedes(self, a: int, b: int) -> bool:
        """True if slot ``a`` is logically older than slot ``b``."""
        return self.pool.order[a] < self.pool.order[b]
