"""Physical registers and rename map for the detailed core.

The paper assumes an unlimited pool of physical registers (Sec 2.2), so
tags are simply objects.  Selective reissue makes a tag a *write-many*
cell: the same physical register receives a new value each time its
producer reissues, and consumers registered on the tag are woken to
reissue whenever the broadcast value actually changes.

Consumers and the producer are recorded as *packed pool references*
(``InstrPool.ref`` values, ``(uid << 32) | handle``), not handles: a
consumer entry can outlive its instruction (retire/squash does not scrub
registration lists), and a packed ref self-invalidates once the slot is
recycled (``pool.ref[ref & REF_MASK] != ref``), exactly replacing the
historical dead-node identity checks.
"""

from __future__ import annotations

from ..isa import NUM_REGS, REG_ZERO


class PhysReg:
    """One physical register: value + readiness + registered consumers."""

    __slots__ = ("value", "ready", "version", "consumers", "producer")

    def __init__(self, producer=None):
        self.value = 0
        self.ready = False
        self.version = 0
        self.consumers: list = []  # packed refs to wake on broadcast
        self.producer = producer  # packed ref of the owner (None = arch)

    def broadcast(self, value: int) -> bool:
        """Publish a (possibly new) value; returns True if it changed."""
        changed = not self.ready or self.value != value
        self.value = value
        self.ready = True
        if changed:
            self.version += 1
        return changed


class RenameMap:
    """Architectural register -> physical tag, with backward undo.

    The fetch-frontier map is speculative.  Recovery restores it by
    walking squashed instructions youngest-first and re-installing each
    one's ``prev_tag`` (the mapping it displaced at dispatch).
    """

    def __init__(self):
        self.map: list[PhysReg] = []
        for _ in range(NUM_REGS):
            reg = PhysReg()
            reg.ready = True  # architectural registers start at zero
            self.map.append(reg)
        self.map[REG_ZERO].value = 0

    def lookup(self, arch: int) -> PhysReg:
        return self.map[arch]

    def define(self, arch: int, producer) -> tuple[PhysReg, PhysReg]:
        """Allocate a fresh tag for ``arch``; returns (new_tag, prev_tag)."""
        prev = self.map[arch]
        tag = PhysReg(producer)
        self.map[arch] = tag
        return tag, prev

    def undo(self, arch: int, prev_tag: PhysReg) -> None:
        self.map[arch] = prev_tag
