"""Configuration for the detailed execution-driven simulator (paper Sec 4.1).

Every appendix ablation is a knob here:

* ``completion_model`` / ``hide_false_mispredictions`` — Appendix A.2's
  seven branch-completion configurations (non-spec, spec-C, spec-D, spec
  and their -HFM variants).
* ``repredict_mode`` — Appendix A.3.2's CI-NR / CI / CI-OR.
* ``segment_size`` — Appendix A.4's segmented reorder buffer.
* ``reconv_policy`` — Appendix A.5's hardware heuristics versus software
  post-dominator information.
* ``preemption`` — Appendix A.1's simple versus optimal preemption.
* ``instant_redispatch`` — Section 4.2's CI-I machine.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..ideal.models import DEFAULT_LATENCIES


#: ROB order-key schemes (see :mod:`repro.core.rob`): ``v1`` is the
#: seed's midpoint/renumber discipline, ``v2`` the renumber-free dense
#: sequence introduced with the second golden generation.
ORDER_SCHEMES = ("v1", "v2")

#: scheme used when neither ``CoreConfig.order_scheme`` nor the
#: ``REPRO_ORDER`` environment variable picks one
DEFAULT_ORDER_SCHEME = "v2"


def resolve_order_scheme(scheme: str | None = None) -> str:
    """Resolve an order-scheme knob: explicit argument wins, else the
    ``REPRO_ORDER`` environment variable, else :data:`DEFAULT_ORDER_SCHEME`.

    The two schemes are architecturally equivalent (the differential
    oracle enforces it) but produce different ready-heap tie-breaks, so
    each has its own golden generation — selection must be loud and
    deterministic, hence unknown values raise instead of falling back.
    """
    source = "order_scheme"
    if scheme is None:
        source = "REPRO_ORDER"
        scheme = os.environ.get("REPRO_ORDER", "").strip().lower() or None
    if scheme is None:
        return DEFAULT_ORDER_SCHEME
    if scheme not in ORDER_SCHEMES:
        raise ConfigError(
            f"{source}={scheme!r} is not an order scheme; "
            f"choose from {ORDER_SCHEMES}"
        )
    return scheme


class CompletionModel(enum.Enum):
    """When a branch may complete and trigger recovery (Appendix A.2.1)."""

    NON_SPEC = "non-spec"  # in-order branches + all older stores resolved
    SPEC_D = "spec-D"  # in-order branches, data-speculative operands allowed
    SPEC_C = "spec-C"  # out-of-order branches, no data-speculative operands
    SPEC = "spec"  # complete whenever the outcome is computed

    @property
    def branches_in_order(self) -> bool:
        return self in (CompletionModel.NON_SPEC, CompletionModel.SPEC_D)

    @property
    def requires_resolved_stores(self) -> bool:
        return self in (CompletionModel.NON_SPEC, CompletionModel.SPEC_C)


class RepredictMode(enum.Enum):
    """Re-predict sequences during redispatch (Appendix A.3.2)."""

    NONE = "CI-NR"  # initial predictions kept until branches complete
    HEURISTIC = "CI"  # predictor re-predicts; completed branches force it
    ORACLE = "CI-OR"  # correct predictions are never overturned


class ReconvPolicy(enum.Enum):
    """How reconvergent points are identified (Sec 3.2.1 + Appendix A.5)."""

    NONE = "none"  # complete squash (the BASE machine)
    POSTDOM = "postdom"  # software post-dominator analysis
    RETURN = "return"  # predicted targets of returns
    LOOP = "loop"  # predicted targets of backward branches
    LTB = "ltb"  # not-taken target of mispredicted backward branches
    RETURN_LOOP = "return/loop"
    RETURN_LTB = "return/ltb"
    LOOP_LTB = "loop/ltb"
    RETURN_LOOP_LTB = "return/loop/ltb"

    @property
    def uses_return(self) -> bool:
        return "return" in self.value

    @property
    def uses_loop(self) -> bool:
        return "loop" in self.value and self is not ReconvPolicy.LTB

    @property
    def uses_ltb(self) -> bool:
        return "ltb" in self.value

    @property
    def exploits_ci(self) -> bool:
        return self is not ReconvPolicy.NONE


class Preemption(enum.Enum):
    """Handling of mispredictions during an active restart (Appendix A.1)."""

    SIMPLE = "simple"
    OPTIMAL = "optimal"


@dataclass
class CoreConfig:
    """Full configuration of the detailed processor."""

    window_size: int = 256
    width: int = 16  # fetch/dispatch/issue/retire width
    segment_size: int = 1  # ROB segment granularity (Appendix A.4)

    reconv_policy: ReconvPolicy = ReconvPolicy.POSTDOM
    completion_model: CompletionModel = CompletionModel.SPEC_C
    hide_false_mispredictions: bool = False  # the -HFM oracle variants
    repredict_mode: RepredictMode = RepredictMode.HEURISTIC
    preemption: Preemption = Preemption.OPTIMAL
    instant_redispatch: bool = False  # CI-I: 1-cycle redispatch
    oracle_global_history: bool = False  # Appendix A.3.1

    # Branch predictor geometry (paper: 2^16 gshare + CTB).
    predictor_index_bits: int = 16

    # Data cache (Sec 4.1): 64KB 4-way, 2-cycle hit, 14-cycle miss.
    perfect_cache: bool = False
    cache_size_bytes: int = 64 * 1024
    cache_assoc: int = 4
    cache_hit_latency: int = 2
    cache_miss_latency: int = 14

    latencies: dict[str, int] = field(default_factory=lambda: dict(DEFAULT_LATENCIES))

    #: safety valve for runaway simulations
    max_cycles: int = 20_000_000
    #: forward-progress watchdog: cycles without a retirement before the
    #: run is declared livelocked (SimulationHang), far below max_cycles
    watchdog_cycles: int = 50_000
    #: with exact post-dominator reconvergence the commit-time next-PC
    #: check should never fire; strict mode escalates a sequence repair
    #: to CosimulationError instead of silently healing (used by the
    #: fault-injection suite to expose corrupted reconvergence state)
    strict_commit: bool = False
    #: machine-invariant sanitizer (repro.analysis.MachineSanitizer):
    #: True/False force it on/off; None defers to the REPRO_SANITIZE
    #: environment variable ("1"/"true"/"yes"/"on", case-insensitive)
    sanitize: bool | None = None
    #: cycles between sanitizer checks; 1 checks every cycle (used by
    #: the fault-injection tests to localize corruption immediately)
    sanitize_stride: int = 64
    #: ROB order-key scheme: "v1" (seed midpoint/renumber) or "v2"
    #: (renumber-free dense sequence); None defers to the REPRO_ORDER
    #: environment variable, else DEFAULT_ORDER_SCHEME.  The schemes are
    #: architecturally equivalent but tie-break-visible, so each is
    #: gated by its own golden generation (tests/goldens/).
    order_scheme: str | None = None

    def resolved_order_scheme(self) -> str:
        """Resolve the order-scheme knob against ``REPRO_ORDER``."""
        return resolve_order_scheme(self.order_scheme)

    def sanitize_enabled(self) -> bool:
        """Resolve the sanitizer knob against ``REPRO_SANITIZE``."""
        if self.sanitize is not None:
            return self.sanitize
        value = os.environ.get("REPRO_SANITIZE", "")
        return value.strip().lower() in ("1", "true", "yes", "on")

    def validate(self) -> "CoreConfig":
        """Reject inconsistent knob combinations before simulation.

        Raises :class:`~repro.errors.ConfigError` naming the offending
        knob(s); returns ``self`` so call sites can chain.  Run by
        ``Processor.__init__`` so a bad sweep point fails in microseconds
        instead of mid-simulation.
        """
        def require(cond: bool, message: str) -> None:
            if not cond:
                raise ConfigError(f"invalid CoreConfig: {message}")

        require(
            isinstance(self.window_size, int) and self.window_size >= 1,
            f"window_size must be a positive integer, got {self.window_size!r}",
        )
        require(
            isinstance(self.width, int) and self.width >= 1,
            f"width must be a positive integer, got {self.width!r}",
        )
        require(
            isinstance(self.segment_size, int) and self.segment_size >= 1,
            f"segment_size must be a positive integer, got {self.segment_size!r}",
        )
        require(
            self.window_size % self.segment_size == 0,
            f"window_size ({self.window_size}) must be a multiple of "
            f"segment_size ({self.segment_size})",
        )
        require(
            isinstance(self.reconv_policy, ReconvPolicy),
            f"reconv_policy must be a ReconvPolicy, got {self.reconv_policy!r}",
        )
        require(
            isinstance(self.completion_model, CompletionModel),
            f"completion_model must be a CompletionModel, "
            f"got {self.completion_model!r}",
        )
        require(
            isinstance(self.repredict_mode, RepredictMode),
            f"repredict_mode must be a RepredictMode, got {self.repredict_mode!r}",
        )
        require(
            isinstance(self.preemption, Preemption),
            f"preemption must be a Preemption, got {self.preemption!r}",
        )
        require(
            not (self.instant_redispatch and not self.reconv_policy.exploits_ci),
            "instant_redispatch (the CI-I machine) requires a reconvergence "
            "policy that exploits control independence, but reconv_policy "
            "is ReconvPolicy.NONE",
        )
        require(
            1 <= self.predictor_index_bits <= 30,
            f"predictor_index_bits must be in [1, 30], "
            f"got {self.predictor_index_bits!r}",
        )
        if not self.perfect_cache:
            require(
                self.cache_size_bytes >= 1 and self.cache_assoc >= 1,
                f"cache geometry must be positive, got size_bytes="
                f"{self.cache_size_bytes!r} assoc={self.cache_assoc!r}",
            )
            line_bytes = 4 * 8  # line_words * WORD_BYTES (memsys defaults)
            sets = self.cache_size_bytes // (line_bytes * self.cache_assoc)
            require(
                sets >= 1 and sets & (sets - 1) == 0,
                f"cache_size_bytes={self.cache_size_bytes} with assoc="
                f"{self.cache_assoc} yields {sets} sets; the set count "
                "must be a positive power of two",
            )
            require(
                self.cache_hit_latency >= 1 and self.cache_miss_latency >= 1,
                f"cache latencies must be >= 1 cycle, got hit="
                f"{self.cache_hit_latency!r} miss={self.cache_miss_latency!r}",
            )
        bad_latencies = {
            op: lat
            for op, lat in self.latencies.items()
            if not isinstance(lat, int) or lat < 1
        }
        require(
            not bad_latencies,
            f"operation latencies must be integers >= 1, got {bad_latencies!r}",
        )
        require(
            isinstance(self.max_cycles, int) and self.max_cycles >= 1,
            f"max_cycles must be a positive integer, got {self.max_cycles!r}",
        )
        require(
            isinstance(self.watchdog_cycles, int) and self.watchdog_cycles >= 1,
            f"watchdog_cycles must be a positive integer, "
            f"got {self.watchdog_cycles!r}",
        )
        require(
            isinstance(self.sanitize_stride, int) and self.sanitize_stride >= 1,
            f"sanitize_stride must be a positive integer, "
            f"got {self.sanitize_stride!r}",
        )
        require(
            self.order_scheme is None or self.order_scheme in ORDER_SCHEMES,
            f"order_scheme must be None or one of {ORDER_SCHEMES}, "
            f"got {self.order_scheme!r}",
        )
        require(
            not self.strict_commit
            or self.reconv_policy in (ReconvPolicy.POSTDOM, ReconvPolicy.NONE),
            "strict_commit requires exact reconvergence information "
            "(ReconvPolicy.POSTDOM or NONE): the hardware heuristics "
            "mis-splice legitimately and rely on commit-time repair",
        )
        return self
