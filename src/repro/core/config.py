"""Configuration for the detailed execution-driven simulator (paper Sec 4.1).

Every appendix ablation is a knob here:

* ``completion_model`` / ``hide_false_mispredictions`` — Appendix A.2's
  seven branch-completion configurations (non-spec, spec-C, spec-D, spec
  and their -HFM variants).
* ``repredict_mode`` — Appendix A.3.2's CI-NR / CI / CI-OR.
* ``segment_size`` — Appendix A.4's segmented reorder buffer.
* ``reconv_policy`` — Appendix A.5's hardware heuristics versus software
  post-dominator information.
* ``preemption`` — Appendix A.1's simple versus optimal preemption.
* ``instant_redispatch`` — Section 4.2's CI-I machine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..ideal.models import DEFAULT_LATENCIES


class CompletionModel(enum.Enum):
    """When a branch may complete and trigger recovery (Appendix A.2.1)."""

    NON_SPEC = "non-spec"  # in-order branches + all older stores resolved
    SPEC_D = "spec-D"  # in-order branches, data-speculative operands allowed
    SPEC_C = "spec-C"  # out-of-order branches, no data-speculative operands
    SPEC = "spec"  # complete whenever the outcome is computed

    @property
    def branches_in_order(self) -> bool:
        return self in (CompletionModel.NON_SPEC, CompletionModel.SPEC_D)

    @property
    def requires_resolved_stores(self) -> bool:
        return self in (CompletionModel.NON_SPEC, CompletionModel.SPEC_C)


class RepredictMode(enum.Enum):
    """Re-predict sequences during redispatch (Appendix A.3.2)."""

    NONE = "CI-NR"  # initial predictions kept until branches complete
    HEURISTIC = "CI"  # predictor re-predicts; completed branches force it
    ORACLE = "CI-OR"  # correct predictions are never overturned


class ReconvPolicy(enum.Enum):
    """How reconvergent points are identified (Sec 3.2.1 + Appendix A.5)."""

    NONE = "none"  # complete squash (the BASE machine)
    POSTDOM = "postdom"  # software post-dominator analysis
    RETURN = "return"  # predicted targets of returns
    LOOP = "loop"  # predicted targets of backward branches
    LTB = "ltb"  # not-taken target of mispredicted backward branches
    RETURN_LOOP = "return/loop"
    RETURN_LTB = "return/ltb"
    LOOP_LTB = "loop/ltb"
    RETURN_LOOP_LTB = "return/loop/ltb"

    @property
    def uses_return(self) -> bool:
        return "return" in self.value

    @property
    def uses_loop(self) -> bool:
        return "loop" in self.value and self is not ReconvPolicy.LTB

    @property
    def uses_ltb(self) -> bool:
        return "ltb" in self.value

    @property
    def exploits_ci(self) -> bool:
        return self is not ReconvPolicy.NONE


class Preemption(enum.Enum):
    """Handling of mispredictions during an active restart (Appendix A.1)."""

    SIMPLE = "simple"
    OPTIMAL = "optimal"


@dataclass
class CoreConfig:
    """Full configuration of the detailed processor."""

    window_size: int = 256
    width: int = 16  # fetch/dispatch/issue/retire width
    segment_size: int = 1  # ROB segment granularity (Appendix A.4)

    reconv_policy: ReconvPolicy = ReconvPolicy.POSTDOM
    completion_model: CompletionModel = CompletionModel.SPEC_C
    hide_false_mispredictions: bool = False  # the -HFM oracle variants
    repredict_mode: RepredictMode = RepredictMode.HEURISTIC
    preemption: Preemption = Preemption.OPTIMAL
    instant_redispatch: bool = False  # CI-I: 1-cycle redispatch
    oracle_global_history: bool = False  # Appendix A.3.1

    # Branch predictor geometry (paper: 2^16 gshare + CTB).
    predictor_index_bits: int = 16

    # Data cache (Sec 4.1): 64KB 4-way, 2-cycle hit, 14-cycle miss.
    perfect_cache: bool = False
    cache_size_bytes: int = 64 * 1024
    cache_assoc: int = 4
    cache_hit_latency: int = 2
    cache_miss_latency: int = 14

    latencies: dict[str, int] = field(default_factory=lambda: dict(DEFAULT_LATENCIES))

    #: safety valve for runaway simulations
    max_cycles: int = 20_000_000
