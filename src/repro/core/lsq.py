"""Load/store queue with insertion/removal and ordering repair.

Implements the paper's aggressive memory model (Sec 4.1): loads issue
ahead of unresolved stores, forwarding from the youngest older store
with a matching resolved address, else reading committed memory.  When
a store (re)executes, changes its address/value, or is selectively
squashed out of the window, every younger load that already executed
against an affected address is reissued — and its dependence chain
follows through the register broadcast mechanism.

Entries are pool handles into the shared columnar
:class:`~repro.core.soa.InstrPool`; the queue tracks only *live*
instructions (``drop`` runs before the ROB recycles a slot), so handles
here never dangle.  Order between entries comes from the pool's order
column, so entries inserted into the middle of the window by a restart
sequence compare correctly (paper Appendix A.4.3's physical-to-logical
translation).
"""

from __future__ import annotations

from .soa import ST_COMPLETED, InstrPool


class LoadStoreQueue:
    """Tracks live loads and stores in the window, by pool handle."""

    def __init__(self, pool: InstrPool):
        self.pool = pool
        self._stores: dict[int, int] = {}
        self._loads: dict[int, int] = {}
        #: stores whose address is still unknown — kept in sync by
        #: :meth:`store_resolved` so the branch-completion gate scans the
        #: (usually tiny) unresolved subset, not every store in flight
        self._unresolved_stores: dict[int, int] = {}

    # ------------------------------------------------------------------
    def add(self, h: int) -> None:
        pool = self.pool
        instr = pool.instr[h]
        uid = pool.uid[h]
        if instr.f_store:
            self._stores[uid] = h
            self._unresolved_stores[uid] = h
        elif instr.f_load:
            self._loads[uid] = h

    def drop(self, h: int) -> None:
        pool = self.pool
        if not pool.instr[h].f_mem:  # only memory ops are ever tracked
            return
        uid = pool.uid[h]
        self._stores.pop(uid, None)
        self._loads.pop(uid, None)
        self._unresolved_stores.pop(uid, None)

    def store_resolved(self, h: int) -> None:
        """The store completed: its address is now known."""
        self._unresolved_stores.pop(self.pool.uid[h], None)

    # ------------------------------------------------------------------
    def forward_source(self, load: int) -> int | None:
        """Youngest older executed store matching the load's address."""
        pool = self.pool
        state = pool.state
        addr_col = pool.addr
        order_col = pool.order
        best: int | None = None
        best_order = 0
        addr = addr_col[load]
        order = order_col[load]
        for sh in self._stores.values():
            store_order = order_col[sh]
            if (
                state[sh] & ST_COMPLETED
                and addr_col[sh] == addr
                and store_order < order
                and (best is None or store_order > best_order)
            ):
                best = sh
                best_order = store_order
        return best

    def unresolved_older_stores(self, h: int) -> bool:
        """Any older store whose address is still unknown?"""
        pool = self.pool
        state = pool.state
        order_col = pool.order
        order = order_col[h]
        for sh in self._unresolved_stores.values():
            if not state[sh] & ST_COMPLETED and order_col[sh] < order:
                return True
        return False

    def loads_affected_by(self, store: int, addrs: set[int]) -> list[int]:
        """Younger loads that already executed against an affected address.

        Conservative: any younger executed load whose address matches the
        store's old or new address is reissued; the precise forwarding
        check happens when the load re-executes.
        """
        pool = self.pool
        order_col = pool.order
        addr_col = pool.addr
        issue_count = pool.issue_count
        order = order_col[store]
        out = []
        for lh in self._loads.values():
            if order_col[lh] > order and addr_col[lh] in addrs and issue_count[lh] > 0:
                out.append(lh)
        return out
