"""Load/store queue with insertion/removal and ordering repair.

Implements the paper's aggressive memory model (Sec 4.1): loads issue
ahead of unresolved stores, forwarding from the youngest older store
with a matching resolved address, else reading committed memory.  When
a store (re)executes, changes its address/value, or is selectively
squashed out of the window, every younger load that already executed
against an affected address is reissued — and its dependence chain
follows through the register broadcast mechanism.

Order between entries comes from the ROB's order keys, so entries
inserted into the middle of the window by a restart sequence compare
correctly (paper Appendix A.4.3's physical-to-logical translation).
"""

from __future__ import annotations

from .rob import DynInstr


class LoadStoreQueue:
    """Tracks live loads and stores in the window."""

    def __init__(self):
        self._stores: dict[int, DynInstr] = {}
        self._loads: dict[int, DynInstr] = {}
        #: stores whose address is still unknown — kept in sync by
        #: :meth:`store_resolved` so the branch-completion gate scans the
        #: (usually tiny) unresolved subset, not every store in flight
        self._unresolved_stores: dict[int, DynInstr] = {}

    # ------------------------------------------------------------------
    def add(self, node: DynInstr) -> None:
        if node.instr.f_store:
            self._stores[node.uid] = node
            self._unresolved_stores[node.uid] = node
        elif node.instr.f_load:
            self._loads[node.uid] = node

    def drop(self, node: DynInstr) -> None:
        if not node.instr.f_mem:  # only memory ops are ever tracked
            return
        self._stores.pop(node.uid, None)
        self._loads.pop(node.uid, None)
        self._unresolved_stores.pop(node.uid, None)

    def store_resolved(self, node: DynInstr) -> None:
        """The store completed: its address is now known."""
        self._unresolved_stores.pop(node.uid, None)

    # ------------------------------------------------------------------
    def forward_source(self, load: DynInstr) -> DynInstr | None:
        """Youngest older executed store matching the load's address."""
        best: DynInstr | None = None
        addr = load.addr
        order = load.order
        for store in self._stores.values():
            if (
                store.completed
                and store.addr == addr
                and store.order < order
                and (best is None or store.order > best.order)
            ):
                best = store
        return best

    def unresolved_older_stores(self, node: DynInstr) -> bool:
        """Any older store whose address is still unknown?"""
        order = node.order
        for store in self._unresolved_stores.values():
            if not store.completed and store.order < order:
                return True
        return False

    def loads_affected_by(self, store: DynInstr, addrs: set[int]) -> list[DynInstr]:
        """Younger loads that already executed against an affected address.

        Conservative: any younger executed load whose address matches the
        store's old or new address is reissued; the precise forwarding
        check happens when the load re-executes.
        """
        order = store.order
        out = []
        for load in self._loads.values():
            if load.order > order and load.addr in addrs and load.issue_count > 0:
                out.append(load)
        return out
